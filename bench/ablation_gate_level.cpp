// Ablation A8 — does the paper's high-level model survive the
// microarchitecture?  The behavioural loop (additive linearised model,
// 1-stage length steps, ideal TDC) against the gate-level loop (physical
// stage chains, odd-length tap mux, thermometer readout with
// metastability, period jitter), through the same variation scenarios.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/common/table.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/gate_level_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/variation/scenario.hpp"

namespace {

using namespace roclk;

analysis::RunMetrics behavioural_run(
    const std::shared_ptr<const variation::VariationSource>& source,
    std::size_t cycles, std::size_t skip) {
  auto sim = core::make_iir_system(64.0, 64.0);
  const auto inputs =
      core::SimulationInputs::from_variation_source(source, 64.0);
  const auto trace = sim.run(inputs, cycles);
  return analysis::evaluate_run(trace, 64.0, 76.8, skip);
}

analysis::RunMetrics gate_level_run(const variation::VariationSource& source,
                                    std::size_t cycles, std::size_t skip,
                                    double metastability, double jitter) {
  core::GateLevelConfig cfg;
  // A 2x2 readout-chain array roughly matching the behavioural model's
  // worst-of sensor grid.
  cfg.tdcs.clear();
  for (double x : {0.3, 0.7}) {
    for (double y : {0.3, 0.7}) {
      sensor::DetailedTdcConfig tdc;
      tdc.chain.start = {x - 0.01, y - 0.01};
      tdc.chain.end = {x + 0.01, y + 0.01};
      tdc.metastability_p = metastability;
      cfg.tdcs.push_back(tdc);
    }
  }
  cfg.jitter.white_sigma = jitter;
  core::GateLevelSimulator sim{
      cfg, std::make_unique<control::IirControlHardware>()};
  const auto trace = sim.run(source, cycles);
  return analysis::evaluate_run(trace, 64.0, 76.8, skip);
}

}  // namespace

int main() {
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A8 — behavioural (Fig. 4) vs gate-level loop",
      "IIR RO, c = 64, t_clk = 1c.  Gate level: odd-length tap mux, four "
      "thermometer TDC\nchains (worst-of), optional metastability and "
      "period jitter.");

  struct Scenario {
    const char* label;
    std::shared_ptr<const variation::VariationSource> source;
  };
  const Scenario scenarios[] = {
      {"harmonic HoDV 20% @ 50c",
       variation::make_harmonic_hodv(0.2, 50.0 * 64.0)},
      {"harmonic HoDV 20% @ 25c",
       variation::make_harmonic_hodv(0.2, 25.0 * 64.0)},
      {"slow hotspot 15%",
       std::make_shared<variation::TemperatureHotspot>(
           0.15, variation::DiePoint{0.7, 0.7}, 0.25, 64.0 * 200.0,
           64.0 * 2000.0)},
  };

  TextTable table{{"scenario", "model", "SM (stages)", "mean period",
                   "rel. period", "tau ripple"}};
  double worst_gap = 0.0;
  for (const auto& s : scenarios) {
    const std::size_t cycles = 8000;
    const std::size_t skip = 3000;
    const auto behav = behavioural_run(s.source, cycles, skip);
    const auto gate = gate_level_run(*s.source, cycles, skip, 0.0, 0.0);
    const auto harsh = gate_level_run(*s.source, cycles, skip,
                                      /*metastability=*/0.1,
                                      /*jitter=*/0.5);
    auto add = [&](const char* model, const analysis::RunMetrics& m) {
      table.add_row({s.label, model, format_double(m.safety_margin, 2),
                     format_double(m.mean_period, 2),
                     format_double(m.relative_adaptive_period, 3),
                     format_double(m.tau_ripple, 2)});
    };
    add("behavioural", behav);
    add("gate-level (clean)", gate);
    add("gate-level (meta+jitter)", harsh);
    worst_gap = std::max(worst_gap,
                         std::fabs(behav.relative_adaptive_period -
                                   gate.relative_adaptive_period));
  }
  table.print(std::cout);
  rb::save_table(table, "ablation_gate_level");

  std::printf("\nworst clean-model relative-period gap: %.4f\n", worst_gap);
  rb::shape_check(worst_gap < 0.06,
                  "the linearised Fig. 4 model predicts the gate-level "
                  "loop's operating point within a few percent");
  return 0;
}
