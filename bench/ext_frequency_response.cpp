// Extension bench — loop error-rejection frequency response: the analytic
// |H_delta| curve of eq. 5 against the same gain measured from time-domain
// simulation (Goertzel tone extraction), for the IIR RO, the free RO and
// the fixed clock.  This is the frequency-domain backbone of Fig. 8.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/frequency_response.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/control/iir_control.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — error-rejection frequency response (analytic vs measured)",
      "Gain from perturbation tone e to residual timing error tau - c;\n"
      "t_clk = 1c.  Gain < 1: the system attenuates; > 1: it amplifies.");

  const auto grid = analysis::log_space(5.0, 1000.0, 17);
  const auto curve = analysis::error_rejection_curve(grid, 1.0);

  TextTable table{{"Te/c", "IIR analytic |Hd|", "IIR measured", "free RO",
                   "fixed clock"}};
  std::vector<double> xs;
  std::vector<double> analytic;
  std::vector<double> measured;
  std::vector<double> free_ro;
  double worst_gap = 0.0;
  for (const auto& p : curve) {
    const double g_free = analysis::measured_error_gain(
        analysis::SystemKind::kFreeRo, 64.0, 64.0, 1.0, p.te_over_c);
    const double g_fixed = analysis::measured_error_gain(
        analysis::SystemKind::kFixedClock, 64.0, 64.0, 1.0, p.te_over_c);
    table.add_row_values({p.te_over_c, p.analytic_gain, p.measured_gain,
                          g_free, g_fixed});
    xs.push_back(p.te_over_c);
    analytic.push_back(p.analytic_gain);
    measured.push_back(p.measured_gain);
    free_ro.push_back(g_free);
    worst_gap = std::max(worst_gap,
                         std::fabs(p.analytic_gain - p.measured_gain));
  }
  table.print(std::cout);
  rb::save_table(table, "ext_frequency_response");

  PlotOptions opts;
  opts.title = "error rejection |gain| vs Te/c (t_clk = 1c)";
  opts.x_label = "Te/c";
  opts.y_label = "|residual| / |tone|";
  opts.log_x = true;
  AsciiPlot plot{opts};
  plot.add_series("IIR analytic", xs, analytic, 'a');
  plot.add_series("IIR measured", xs, measured, 'm');
  plot.add_series("free RO measured", xs, free_ro, 'f');
  std::printf("\n%s\n", plot.render().c_str());

  rb::shape_check(worst_gap < 0.1,
                  "time-domain simulation reproduces eq. 5's |H_delta| "
                  "within 0.1 across the band");
  rb::shape_check(analytic.back() < 0.05,
                  "type-1 loop: rejection is complete toward DC (eq. 8)");
  rb::shape_check(*std::max_element(analytic.begin(), analytic.end()) > 1.0,
                  "fast perturbations are amplified (the Fig. 8 >1 regime)");
  return 0;
}
