// Extension bench — clock stability (Allan deviation) of adaptive clocks.
//
// Adaptation is deliberate period modulation, which classical clock-
// stability metrics count as noise.  This bench computes the overlapping
// Allan deviation of the delivered period for the four systems under the
// paper's HoDV plus realistic RO jitter, showing (a) the adaptation bump
// at averaging windows near the perturbation period, (b) that the
// adaptive clock is *less* "stable" than the fixed clock by design — the
// price of tracking — and (c) that white RO jitter averages down
// identically for all of them.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/stability_metrics.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/osc/jitter.hpp"

namespace {

std::vector<double> run_periods(roclk::analysis::SystemKind kind,
                                double jitter_sigma,
                                double hodv_amplitude = 12.8) {
  using namespace roclk;
  const double c = 64.0;
  auto sim = analysis::make_system(kind, c, c);
  const signal::SineWaveform hodv{hodv_amplitude, 50.0 * c};
  osc::JitterConfig jcfg;
  jcfg.white_sigma = jitter_sigma;
  osc::JitterModel jitter{jcfg};

  core::SimulationTrace trace;
  const std::size_t cycles = 20000;
  trace.reserve(cycles);
  for (std::size_t n = 0; n < cycles; ++n) {
    const double t = static_cast<double>(n) * c;
    const double e = hodv.at(t);
    trace.push(sim.step(e + jitter.sample(), e, 0.0));
  }
  const auto& periods = trace.delivered_period();
  return {periods.begin() + 4000, periods.end()};
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — Allan deviation of the delivered clock",
      "HoDV 0.2c @ Te = 50c, white RO jitter 0.3 stages RMS, t_clk = 1c.\n"
      "ADEV of fractional period deviation vs averaging window m "
      "(in periods).");

  TextTable table{{"m (periods)", "IIR RO", "TEAtime RO", "Free RO",
                   "Fixed clock"}};

  std::vector<std::vector<double>> curves;
  std::vector<const char*> names{"IIR RO", "TEAtime RO", "Free RO",
                                 "Fixed clock"};
  std::vector<std::vector<analysis::AllanPoint>> adev_curves;
  for (auto kind : analysis::kAllSystems) {
    const auto periods = run_periods(kind, 0.3);
    const auto y = analysis::fractional_deviation(periods, 64.0);
    adev_curves.push_back(analysis::allan_curve(y));
  }

  const std::size_t rows = adev_curves[0].size();
  std::vector<double> ms;
  for (std::size_t r = 0; r < rows; ++r) {
    table.add_row_values({static_cast<double>(adev_curves[0][r].m),
                          adev_curves[0][r].adev, adev_curves[1][r].adev,
                          adev_curves[2][r].adev, adev_curves[3][r].adev},
                         6);
    ms.push_back(static_cast<double>(adev_curves[0][r].m));
  }
  table.print(std::cout);
  rb::save_table(table, "ext_stability_adev");

  PlotOptions opts;
  opts.title = "ADEV vs averaging window";
  opts.x_label = "m (periods)";
  opts.y_label = "ADEV";
  opts.log_x = true;
  AsciiPlot plot{opts};
  const char glyphs[] = {'i', 't', 'f', 'x'};
  for (std::size_t s = 0; s < adev_curves.size(); ++s) {
    std::vector<double> ys;
    for (const auto& p : adev_curves[s]) ys.push_back(p.adev);
    plot.add_series(names[s], ms, ys, glyphs[s]);
  }
  std::printf("\n%s\n", plot.render().c_str());

  // Shape checks.
  auto adev_at = [&](std::size_t curve, std::size_t m_target) {
    for (const auto& p : adev_curves[curve]) {
      if (p.m == m_target) return p.adev;
    }
    return -1.0;
  };
  rb::shape_check(adev_at(0, 16) > adev_at(3, 16),
                  "the adaptive clock's ADEV exceeds the fixed clock's at "
                  "mid windows — adaptation IS period modulation");
  // White-FM averaging, shown on a jitter-only run (the idealised fixed
  // clock in this model carries no oscillator noise of its own).
  {
    const auto periods =
        run_periods(analysis::SystemKind::kFreeRo, 0.3, 0.0);
    const auto y = analysis::fractional_deviation(periods, 64.0);
    const double adev1 = analysis::allan_deviation(y, 1).value();
    const double adev16 = analysis::allan_deviation(y, 16).value();
    rb::shape_check(adev16 < 0.4 * adev1,
                    "jitter-only ADEV averages down with m (white FM)");
  }
  // The adaptation bump: ADEV near the perturbation period (m ~ Te/2 = 25,
  // nearest ladder point 16 or 32) exceeds the small-m value for the IIR.
  rb::shape_check(adev_at(0, 16) > adev_at(0, 1),
                  "adaptation raises ADEV toward the perturbation window "
                  "(the stability price of tracking)");
  std::printf(
      "\nReading: by classic clock-stability standards the adaptive clock "
      "is 'worse' — on\npurpose.  Loads that need a spectrally clean clock "
      "(serial links, RF) must budget for\nthis or stay on a fixed domain; "
      "compute pipelines trade that cleanliness for margin.\n");
  return 0;
}
