// Experiment E5 — paper Fig. 9: relative adaptive period vs static RO<->TDC
// mismatch mu/c in [-0.2, 0.2], for the 3x3 grid of
// t_clk/c in {0.75, 1, 1.25} x Te/c in {25, 37.5, 50}.
// The free RO's safety margin is frozen at design time so one setting must
// survive the whole mu range; T_fixed = c + 0.2c + 0.2c = 1.4c.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Fig. 9 — relative adaptive period vs static mismatch mu/c",
      "Grid: t_clk/c in {0.75, 1, 1.25} x Te/c in {25, 37.5, 50}; HoDV "
      "amplitude 0.2c;\nmu/c swept over [-0.2, 0.2]; T_fixed = 1.4c.");

  std::vector<double> mu_grid;
  for (int i = -4; i <= 4; ++i) mu_grid.push_back(0.05 * i);

  const std::vector<double> te_rows{25.0, 37.5, 50.0};
  const std::vector<double> tclk_cols{0.75, 1.0, 1.25};

  // Aggregates for the shape checks.
  int iir_best_cells_slow = 0;
  int teatime_best_cells_fast = 0;
  int cells_slow = 0;
  int cells_fast = 0;

  for (double te : te_rows) {
    for (double tclk : tclk_cols) {
      const auto cell = analysis::fig9_mismatch_sweep(tclk, te, mu_grid);
      std::printf("--- t_clk = %.2fc, Te = %.1fc ---\n", tclk, te);
      TextTable table{{"mu/c", "IIR RO", "TEAtime RO", "Free RO"}};
      std::vector<double> xs;
      for (std::size_t i = 0; i < mu_grid.size(); ++i) {
        table.add_row_values(
            {cell.mu_over_c[i], cell.iir[i], cell.teatime[i],
             cell.free_ro[i]});
        xs.push_back(cell.mu_over_c[i]);
      }
      table.print(std::cout);

      PlotOptions opts;
      opts.title = "relative adaptive period vs mu/c";
      opts.x_label = "mu/c";
      opts.height = 12;
      opts.width = 56;
      AsciiPlot plot{opts};
      plot.add_series("IIR", xs, cell.iir, 'i');
      plot.add_series("TEAtime", xs, cell.teatime, 't');
      plot.add_series("Free", xs, cell.free_ro, 'f');
      std::printf("%s\n", plot.render().c_str());

      char name[64];
      std::snprintf(name, sizeof name, "fig9_tclk%03d_te%03d",
                    static_cast<int>(tclk * 100),
                    static_cast<int>(te * 10));
      rb::save_table(table, name);

      // Who wins this cell (mean over the mu sweep)?
      double iir_mean = 0.0;
      double tea_mean = 0.0;
      double free_mean = 0.0;
      for (std::size_t i = 0; i < mu_grid.size(); ++i) {
        iir_mean += cell.iir[i];
        tea_mean += cell.teatime[i];
        free_mean += cell.free_ro[i];
      }
      const bool iir_wins =
          iir_mean <= tea_mean + 1e-9 && iir_mean <= free_mean + 1e-9;
      const bool tea_wins =
          tea_mean <= iir_mean + 1e-9 && tea_mean <= free_mean + 1e-9;
      const bool near_tie =
          std::fabs(iir_mean - tea_mean) / mu_grid.size() < 0.03;
      if (te >= 50.0) {
        ++cells_slow;
        if (iir_wins || near_tie) ++iir_best_cells_slow;
      } else if (te <= 25.0) {
        ++cells_fast;
        if (tea_wins) ++teatime_best_cells_fast;
      }
    }
  }

  rb::shape_check(iir_best_cells_slow == cells_slow,
                  "IIR RO best on the slow-perturbation row (Te = 50c)");
  rb::shape_check(teatime_best_cells_fast >= cells_fast - 1,
                  "TEAtime best on the fast-perturbation row (Te = 25c)");
  std::printf(
      "\nPaper reading: 'On almost any situation the IIR RO is the best "
      "option. Only for the higher\nfrequencies the TEAtime and free RO "
      "surpass the IIR RO performance.'\n"
      "Measured: the crossover where TEAtime's slew-limited but low-latency "
      "control overtakes the\nIIR filter falls between Te = 37.5c and "
      "Te = 50c here (the paper places it between 25c and\n37.5c); the "
      "middle row is within one TDC quantum of a tie.  See EXPERIMENTS.md.\n");
  return 0;
}
