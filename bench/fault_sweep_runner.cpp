// R1 — fault-injection robustness sweep: hardened vs unguarded loop.
//
// Sweeps the fault taxonomy (kind x magnitude x duration) over the Fig. 4
// loop twice per scenario — once with the paper's bare IIR controller and
// once wrapped in the hardened stack (SensorGuard + Watchdog + anti-windup)
// — and scores each pair with analysis::compare_hardening:
//
//  * true timing errors before / during / after the fault window,
//  * time-to-relock after the fault clears,
//  * tail re-convergence (the type-1 zero-steady-state-error property).
//
// The headline claim this runner regenerates: under every sensor-level
// fault the hardened loop commits no more timing errors than the unguarded
// one, and for the dangerous stuck-HIGH faults (the controller is lied to
// that the clock is slow) it eliminates the error storm entirely by
// degrading to the safe maximum period.
//
// Usage: run from the repository root; writes
// bench_results/fault_sweep.csv.  --smoke shrinks the grid for CI.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/fault_metrics.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/fault/fault.hpp"

namespace {

using roclk::analysis::FaultRecoveryMetrics;
using roclk::analysis::HardeningVerdict;
using roclk::fault::FaultEvent;
using roclk::fault::FaultKind;
using roclk::fault::FaultSchedule;

constexpr double kSetpoint = 64.0;
constexpr double kTclk = 128.0;
constexpr std::uint64_t kFaultStart = 300;

struct Scenario {
  FaultKind kind;
  double magnitude;
  std::uint64_t duration;
};

std::vector<Scenario> build_grid(bool smoke) {
  std::vector<Scenario> grid;
  const std::vector<double> stuck = smoke ? std::vector<double>{200.0}
                                          : std::vector<double>{0.0, 32.0,
                                                                128.0, 200.0};
  const std::vector<double> glitch =
      smoke ? std::vector<double>{-48.0} : std::vector<double>{-48.0, -16.0,
                                                               16.0, 48.0};
  const std::vector<double> droop =
      smoke ? std::vector<double>{8.0} : std::vector<double>{2.0, 8.0, 16.0};
  const std::vector<std::uint64_t> durations =
      smoke ? std::vector<std::uint64_t>{40}
            : std::vector<std::uint64_t>{10, 40, 120};
  for (const std::uint64_t d : durations) {
    for (const double m : stuck) grid.push_back({FaultKind::kTdcStuckAt, m, d});
    for (const double m : glitch) {
      grid.push_back({FaultKind::kTdcGlitch, m, d});
    }
    grid.push_back({FaultKind::kTdcDroppedSample, 0.0, d});
    for (const double m : droop) {
      grid.push_back({FaultKind::kVoltageDroop, m, d});
    }
    grid.push_back({FaultKind::kRoStageFailure, 6.0, d});
    grid.push_back({FaultKind::kCdnDeliveryDrop, 0.0, d});
  }
  return grid;
}

roclk::core::SimulationTrace run_one(roclk::core::LoopSimulator sim,
                                     const FaultSchedule& schedule,
                                     std::size_t cycles) {
  sim.attach_faults(schedule);
  return sim.run(roclk::core::SimulationInputs::none(), cycles);
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  roclk::bench::print_header(
      "R1 — fault-injection sweep",
      "Hardened (guard+watchdog+anti-windup) vs unguarded IIR loop across "
      "the fault taxonomy; true timing errors and time-to-relock.");

  const auto grid = build_grid(smoke);
  const std::size_t cycles = smoke ? 1200 : 2400;

  roclk::TextTable table{{"kind", "magnitude", "duration", "base_err",
                          "hard_err", "relock", "latency", "reconverged"}};
  std::size_t no_worse = 0;
  std::size_t recovered = 0;
  std::size_t stuck_storms_silenced = 0;
  std::size_t stuck_storms = 0;
  for (const Scenario& s : grid) {
    FaultSchedule schedule;
    schedule.add({s.kind, kFaultStart, s.duration, s.magnitude});
    const auto guarded = run_one(
        roclk::core::make_hardened_iir_system(kSetpoint, kTclk), schedule,
        cycles);
    const auto baseline = run_one(
        roclk::core::make_iir_system(kSetpoint, kTclk), schedule, cycles);
    const HardeningVerdict verdict =
        roclk::analysis::compare_hardening(guarded, baseline, schedule);
    const FaultRecoveryMetrics& g = verdict.guarded;
    const FaultRecoveryMetrics& b = verdict.baseline;
    no_worse += verdict.guarded_no_worse() ? 1 : 0;
    recovered += verdict.guarded_recovers() ? 1 : 0;
    // The dangerous direction: a stuck-HIGH mux makes the bare controller
    // race into the fast rail.
    if (s.kind == FaultKind::kTdcStuckAt && s.magnitude > kSetpoint) {
      ++stuck_storms;
      if (b.violations_during + b.violations_after > 0 &&
          g.violations_after == 0) {
        ++stuck_storms_silenced;
      }
    }
    table.add_row({roclk::fault::to_string(s.kind), fmt(s.magnitude),
                   std::to_string(s.duration),
                   std::to_string(b.violations_during + b.violations_after),
                   std::to_string(g.violations_during + g.violations_after),
                   g.relocked ? "yes" : "NO",
                   std::to_string(g.relock_latency),
                   g.reconverged ? "yes" : "NO"});
  }
  table.print(std::cout);
  roclk::bench::save_table(table, "fault_sweep");

  roclk::bench::shape_check(
      no_worse == grid.size(),
      "hardened loop commits no more timing errors than the unguarded "
      "baseline in every scenario");
  roclk::bench::shape_check(
      recovered == grid.size(),
      "hardened loop relocks and re-converges after every transient fault");
  roclk::bench::shape_check(
      stuck_storms_silenced == stuck_storms,
      "stuck-HIGH error storms are fully silenced by graceful degradation");
  std::printf("\n%zu/%zu scenarios no-worse, %zu/%zu recovered "
              "(%zu cycles each, fault at cycle %llu)\n",
              no_worse, grid.size(), recovered, grid.size(), cycles,
              static_cast<unsigned long long>(kFaultStart));
  const bool ok = no_worse == grid.size() && recovered == grid.size() &&
                  stuck_storms_silenced == stuck_storms;
  return ok ? 0 : 1;
}
