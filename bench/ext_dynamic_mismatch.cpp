// Extension bench — truly *dynamic* heterogeneous variation (HeDV).
//
// The paper's Fig. 9 sweeps a static mismatch mu; its taxonomy and
// conclusions, though, call out heterogeneous *dynamic* variations (SSN,
// IR drop, hotspots) as the real threat in modern ICs.  This bench makes
// mu itself a sinusoid, mu(t) = mu0 sin(2 pi t / T_mu), and sweeps its
// period: unlike a homogeneous variation (which the RO partially tracks
// for free), a TDC-side variation is visible only through the loop, so
// the closed loop's bandwidth is the *only* defence — and the free RO has
// none at all.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/analysis/frequency_response.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/control/iir_control.hpp"

namespace {

roclk::analysis::RunMetrics run_dynamic_mu(roclk::analysis::SystemKind kind,
                                           double tmu_over_c) {
  using namespace roclk;
  const double c = 64.0;
  const double mu0 = 0.15 * c;
  auto sim = analysis::make_system(kind, c, c);
  core::SimulationInputs inputs;
  inputs.mu = [mu0, tmu_over_c, c](double t) {
    return mu0 * std::sin(kTwoPi * t / (tmu_over_c * c));
  };
  const auto cycles = static_cast<std::size_t>(
      std::max(8000.0, 15.0 * tmu_over_c + 3000.0));
  const auto skip = static_cast<std::size_t>(
      std::max(2000.0, 3.0 * tmu_over_c));
  const auto trace = sim.run(inputs, cycles);
  return analysis::evaluate_run(
      trace, c, analysis::fixed_clock_period(c, 0.0, mu0), skip);
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — dynamic heterogeneous mismatch mu(t)",
      "mu(t) = 0.15c * sin(2 pi t / T_mu), no HoDV, t_clk = 1c.\n"
      "A TDC-side variation is invisible to the RO: only loop bandwidth "
      "helps.\nT_fixed budgets the worst mu: 1.15c.");

  TextTable table{{"T_mu/c", "IIR SM", "IIR rel.T", "TEAtime SM",
                   "TEAtime rel.T", "Free RO SM", "Free RO rel.T"}};
  std::vector<double> xs;
  std::vector<double> iir_rel;
  std::vector<double> free_rel;
  for (double tmu : {12.5, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    const auto iir = run_dynamic_mu(analysis::SystemKind::kIir, tmu);
    const auto tea = run_dynamic_mu(analysis::SystemKind::kTeaTime, tmu);
    const auto free_ro = run_dynamic_mu(analysis::SystemKind::kFreeRo, tmu);
    table.add_row_values({tmu, iir.safety_margin,
                          iir.relative_adaptive_period, tea.safety_margin,
                          tea.relative_adaptive_period,
                          free_ro.safety_margin,
                          free_ro.relative_adaptive_period});
    xs.push_back(tmu);
    iir_rel.push_back(iir.relative_adaptive_period);
    free_rel.push_back(free_ro.relative_adaptive_period);
  }
  table.print(std::cout);
  rb::save_table(table, "ext_dynamic_mismatch");

  PlotOptions opts;
  opts.title = "relative adaptive period vs dynamic-mismatch period";
  opts.x_label = "T_mu/c";
  opts.y_label = "<T>/T_fixed";
  opts.log_x = true;
  AsciiPlot plot{opts};
  plot.add_series("IIR RO", xs, iir_rel, 'i');
  plot.add_series("Free RO", xs, free_rel, 'f');
  std::printf("\n%s\n", plot.render().c_str());

  // The free RO gains nothing from mu adaptation at ANY frequency (its
  // margin must always cover the full swing); the closed loop wins once
  // T_mu clears its bandwidth.
  rb::shape_check(iir_rel.back() < free_rel.back() - 0.05,
                  "closed loop nulls slow TDC-side variation; the free RO "
                  "never can");
  rb::shape_check(iir_rel.front() > iir_rel.back() + 0.05,
                  "fast mu defeats the loop bandwidth (eq. 5 rolls off)");
  const double flat =
      *std::max_element(free_rel.begin(), free_rel.end()) -
      *std::min_element(free_rel.begin(), free_rel.end());
  rb::shape_check(flat < 0.05,
                  "free RO performance is frequency-independent for "
                  "TDC-side variation (it simply pays the swing)");
  return 0;
}
