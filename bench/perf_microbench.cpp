// P1 — google-benchmark microbenchmarks: throughput of the simulation
// substrate (cycles/second of the discrete loop, edge simulator, control
// blocks and analytic kernels).  Not a paper artefact; documents that the
// sweeps in the figure benches are cheap.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "roclk/analysis/analytic.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/analysis/sweep_cache.hpp"
#include "roclk/analysis/yield.hpp"
#include "roclk/control/constraints.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/control/setpoint_governor.hpp"
#include "roclk/core/edge_simulator.hpp"
#include "roclk/core/gate_level_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/signal/roots.hpp"
#include "roclk/variation/sources.hpp"

namespace {

using namespace roclk;

void BM_IirHardwareStep(benchmark::State& state) {
  control::IirControlHardware hw;
  hw.reset(64.0);
  double delta = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw.step(delta));
    delta = -delta;
  }
}
BENCHMARK(BM_IirHardwareStep);

void BM_TeaTimeStep(benchmark::State& state) {
  control::TeaTimeControl tea;
  tea.reset(64.0);
  double delta = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tea.step(delta));
    delta = -delta;
  }
}
BENCHMARK(BM_TeaTimeStep);

void BM_LoopSimulatorCycle(benchmark::State& state) {
  auto sim = core::make_iir_system(64.0, 64.0);
  const auto inputs = core::SimulationInputs::harmonic(12.8, 3200.0);
  std::size_t n = 0;
  for (auto _ : state) {
    const double t = static_cast<double>(n++) * 64.0;
    benchmark::DoNotOptimize(
        sim.step(inputs.e_ro(t), inputs.e_tdc(t), inputs.mu(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopSimulatorCycle);

void BM_LoopSimulatorRun4k(benchmark::State& state) {
  const auto inputs = core::SimulationInputs::harmonic(12.8, 3200.0);
  for (auto _ : state) {
    auto sim = core::make_iir_system(64.0, 64.0);
    benchmark::DoNotOptimize(sim.run(inputs, 4000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4000);
}
BENCHMARK(BM_LoopSimulatorRun4k);

void BM_LoopRunBatch4k(benchmark::State& state) {
  // Counterpart of BM_LoopSimulatorRun4k on the batched path: the inputs
  // are pre-evaluated into an SoA block (as the sweeps do once per cell)
  // and the fused run_batch loop consumes them.
  const auto inputs = core::SimulationInputs::harmonic(12.8, 3200.0);
  const auto block = inputs.sample(4000, 64.0);
  for (auto _ : state) {
    auto sim = core::make_iir_system(64.0, 64.0);
    benchmark::DoNotOptimize(sim.run_batch(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4000);
}
BENCHMARK(BM_LoopRunBatch4k);

void BM_InputBlockSample4k(benchmark::State& state) {
  const auto inputs = core::SimulationInputs::harmonic(12.8, 3200.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inputs.sample(4000, 64.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4000);
}
BENCHMARK(BM_InputBlockSample4k);

void BM_Fig9Cell(benchmark::State& state) {
  // One Fig. 9 cell (paper mu sweep, 3 systems per point).  The memo is
  // disabled so every iteration measures real simulation work; see
  // BM_Fig9CellMemoised for the cached path.
  auto& memo = analysis::SweepMemo::global();
  memo.set_enabled(false);
  std::vector<double> mu_grid;
  for (int i = -4; i <= 4; ++i) mu_grid.push_back(0.05 * i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::fig9_mismatch_sweep(1.0, 25.0,
                                                           mu_grid));
  }
  memo.set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mu_grid.size()) * 3);
}
BENCHMARK(BM_Fig9Cell);

void BM_Fig9CellMemoised(benchmark::State& state) {
  auto& memo = analysis::SweepMemo::global();
  memo.clear();
  std::vector<double> mu_grid;
  for (int i = -4; i <= 4; ++i) mu_grid.push_back(0.05 * i);
  // Warm the memo, then measure the pure-lookup sweep.
  benchmark::DoNotOptimize(analysis::fig9_mismatch_sweep(1.0, 25.0, mu_grid));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::fig9_mismatch_sweep(1.0, 25.0,
                                                           mu_grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mu_grid.size()) * 3);
}
BENCHMARK(BM_Fig9CellMemoised);

void BM_YieldCurve1k(benchmark::State& state) {
  // Sweep-scale Monte-Carlo: 1000 fabricated chips per yield curve, spread
  // over the shared pool.
  analysis::YieldConfig cfg;
  cfg.chips = 1000;
  const std::vector<double> margins{4.0, 8.0, 12.0, 16.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::yield_curve(margins, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_YieldCurve1k);

void BM_EdgeSimulatorRun1k(benchmark::State& state) {
  const auto inputs = core::EdgeSimInputs::homogeneous(
      std::make_shared<signal::SineWaveform>(0.2, 3200.0));
  for (auto _ : state) {
    core::EdgeSimConfig cfg;
    core::EdgeSimulator sim{cfg,
                            std::make_unique<control::IirControlHardware>()};
    benchmark::DoNotOptimize(sim.run(inputs, 1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_EdgeSimulatorRun1k);

void BM_ClosedLoopRoots(benchmark::State& state) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::closed_loop_stability(n, d, m));
  }
}
BENCHMARK(BM_ClosedLoopRoots)->Arg(1)->Arg(8)->Arg(32);

void BM_GateLevelStep(benchmark::State& state) {
  core::GateLevelSimulator sim{
      core::GateLevelConfig{},
      std::make_unique<control::IirControlHardware>()};
  variation::VrmRipple ripple{0.1, 3200.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(ripple));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelStep);

void BM_GovernorObserve(benchmark::State& state) {
  control::SetpointGovernor governor{{}};
  double tau = 70.0;
  for (auto _ : state) {
    tau = tau > 70.0 ? 69.0 : 71.0;
    benchmark::DoNotOptimize(governor.observe(tau));
  }
}
BENCHMARK(BM_GovernorObserve);

void BM_YieldChipSample(benchmark::State& state) {
  analysis::YieldConfig cfg;
  cfg.chips = 10;
  const std::vector<double> margins{8.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::yield_curve(margins, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10);
}
BENCHMARK(BM_YieldChipSample);

void BM_SpatialMapSample(benchmark::State& state) {
  variation::WithinDieProcess wid{0.05, 42};
  double x = 0.0;
  for (auto _ : state) {
    x += 1e-4;
    if (x > 1.0) x = 0.0;
    benchmark::DoNotOptimize(wid.at(0.0, {x, 1.0 - x}));
  }
}
BENCHMARK(BM_SpatialMapSample);

void BM_AnalyticMismatch(benchmark::State& state) {
  double t_clk = 0.0;
  for (auto _ : state) {
    t_clk += 0.1;
    benchmark::DoNotOptimize(
        analysis::harmonic_worst_mismatch(t_clk, 640.0, 12.8));
  }
}
BENCHMARK(BM_AnalyticMismatch);

}  // namespace

BENCHMARK_MAIN();
