// Extension bench — parametric yield vs safety margin (the introduction's
// economics, after Bowman et al. [1][3]): a Monte-Carlo over fabricated
// chips compares the fixed clock's yield-vs-margin curve against the
// adaptive clock, and quantifies how the required margin grows with the
// number of critical paths.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/yield.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — parametric yield vs clock safety margin",
      "1000 Monte-Carlo chips, 64 critical paths each; D2D sigma 5%, WID "
      "4%, RND 2%.\nFixed clock: yield(margin).  Adaptive clock: yield "
      "limited only by RO stretch range.");

  analysis::YieldConfig config;
  config.chips = 1000;
  std::vector<double> margins;
  for (int m = 0; m <= 28; m += 2) margins.push_back(m);
  const auto curve = analysis::yield_curve(margins, config);

  TextTable table{{"margin (stages)", "fixed-clock yield",
                   "adaptive yield"}};
  std::vector<double> xs;
  std::vector<double> fixed;
  std::vector<double> adaptive;
  for (const auto& p : curve.points) {
    table.add_row_values({p.margin_stages, p.fixed_yield, p.adaptive_yield});
    xs.push_back(p.margin_stages);
    fixed.push_back(p.fixed_yield);
    adaptive.push_back(p.adaptive_yield);
  }
  table.print(std::cout);
  rb::save_table(table, "ext_yield_curve");

  PlotOptions opts;
  opts.title = "yield vs fixed-clock safety margin";
  opts.x_label = "margin (stages over c = 64)";
  opts.y_label = "yield";
  opts.y_lo = 0.0;
  opts.y_hi = 1.05;
  AsciiPlot plot{opts};
  plot.add_series("fixed clock", xs, fixed, 'x');
  plot.add_series("adaptive clock", xs, adaptive, 'a');
  std::printf("\n%s\n", plot.render().c_str());

  std::printf("worst-path stats: mean %.2f, p99 %.2f stages; adaptive mean "
              "period %.2f stages\n",
              curve.mean_worst_path, curve.p99_worst_path,
              curve.mean_adaptive_period);

  const auto cmp = analysis::compare_margins(0.99, config);
  std::printf("for 99%% yield: fixed clock margin %.2f stages vs adaptive "
              "mean extra period %.2f stages (saves %.2f)\n",
              cmp.fixed_margin_needed, cmp.adaptive_mean_extra_period,
              cmp.margin_saved);

  rb::shape_check(adaptive.front() > fixed.front(),
                  "at zero design margin the adaptive clock out-yields the "
                  "fixed clock");
  rb::shape_check(cmp.margin_saved > 0.0,
                  "adaptive clocking converts a population-p99 margin into "
                  "a per-chip measured period");

  // Bowman's scaling: more critical paths, more margin.
  TextTable paths_table{{"paths per chip", "fixed margin for 99% yield"}};
  double prev = -1.0;
  bool monotone = true;
  for (std::size_t paths : {4u, 16u, 64u, 256u}) {
    analysis::YieldConfig pc = config;
    pc.chips = 500;
    pc.paths = paths;
    const auto c = analysis::compare_margins(0.99, pc);
    paths_table.add_row_values({static_cast<double>(paths),
                                c.fixed_margin_needed});
    if (c.fixed_margin_needed < prev) monotone = false;
    prev = c.fixed_margin_needed;
  }
  std::printf("\n");
  paths_table.print(std::cout);
  rb::save_table(paths_table, "ext_yield_vs_paths");
  rb::shape_check(monotone,
                  "more critical paths demand more margin for the same "
                  "yield (paper refs [1][3])");
  return 0;
}
