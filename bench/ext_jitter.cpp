// Extension bench — ring-oscillator jitter vs the recovered margin.
//
// The paper's RO is noiseless; a real RO jitters, and every stage of RMS
// jitter eats into exactly the safety margin the adaptive loop recovers.
// This bench injects white + random-walk period jitter into the generated
// clock and measures how the needed margin and the relative adaptive
// period degrade — i.e. how clean the RO must be for the architecture to
// keep its advantage.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/osc/jitter.hpp"

namespace {

roclk::analysis::RunMetrics run_with_jitter(double white_sigma,
                                            double walk_sigma) {
  using namespace roclk;
  const double c = 64.0;
  auto sim = core::make_iir_system(c, c);
  osc::JitterConfig jcfg;
  jcfg.white_sigma = white_sigma;
  jcfg.walk_sigma = walk_sigma;
  osc::JitterModel jitter{jcfg};

  // Jitter rides on the RO's generated period: inject it through e_ro
  // (the TDC does not see it directly — it is a generator artefact).
  const signal::SineWaveform hodv{0.2 * c, 50.0 * c};
  core::SimulationTrace trace;
  trace.reserve(6000);
  for (std::size_t n = 0; n < 6000; ++n) {
    const double t = static_cast<double>(n) * c;
    const double e = hodv.at(t);
    trace.push(sim.step(e + jitter.sample(), e, 0.0));
  }
  return analysis::evaluate_run(trace, c,
                                analysis::fixed_clock_period(c, 0.2 * c),
                                1500);
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — RO period jitter vs recovered safety margin",
      "IIR RO, HoDV 0.2c at Te = 50c, t_clk = 1c; white and random-walk "
      "jitter in stages RMS.");

  TextTable table{{"white RMS", "walk RMS", "SM (stages)", "rel. period",
                   "violations"}};
  std::vector<double> xs;
  std::vector<double> rel;
  double rel_clean = 0.0;
  for (double sigma : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto m = run_with_jitter(sigma, sigma / 8.0);
    table.add_row_values({sigma, sigma / 8.0, m.safety_margin,
                          m.relative_adaptive_period,
                          static_cast<double>(m.violations)});
    xs.push_back(sigma);
    rel.push_back(m.relative_adaptive_period);
    if (sigma == 0.0) rel_clean = m.relative_adaptive_period;
  }
  table.print(std::cout);
  rb::save_table(table, "ext_jitter");

  PlotOptions opts;
  opts.title = "relative adaptive period vs RO jitter";
  opts.x_label = "white jitter RMS (stages)";
  opts.y_label = "<T>/T_fixed";
  AsciiPlot plot{opts};
  plot.add_series("IIR RO", xs, rel, '*');
  std::printf("\n%s\n", plot.render().c_str());

  rb::shape_check(rel.back() > rel_clean + 0.02,
                  "jitter erodes the recovered margin");
  rb::shape_check(rel[2] < 1.0,
                  "sub-stage jitter keeps the adaptive clock ahead of the "
                  "fixed clock");
  std::printf(
      "\nReading: the architecture tolerates sub-stage RO jitter easily; "
      "once cycle-to-cycle\njitter reaches a few stages RMS its margin "
      "advantage drains away — a real design\nconstraint the paper's "
      "noiseless model hides.\n");
  return 0;
}
