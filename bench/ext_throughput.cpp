// Extension bench — throughput vs set-point with error detection + replay
// (the optimisation problem behind the paper's "choose the correct
// set-point c that ... maximizes the computation throughput"), and the
// runtime governor's ability to find the knee without design knowledge.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/setpoint_governor.hpp"
#include "roclk/core/throughput_model.hpp"

namespace {

roclk::core::LoopSimulator make_loop(double setpoint) {
  roclk::core::LoopConfig cfg;
  cfg.setpoint_c = setpoint;
  cfg.cdn_delay_stages = 64.0;
  return roclk::core::LoopSimulator{
      cfg, std::make_unique<roclk::control::IirControlHardware>()};
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — throughput vs set-point under error detection / replay",
      "logic depth L = 64 stages, replay penalty 8 cycles, 8% HoDV at "
      "Te = 40c, t_clk = 1c.");

  const core::ThroughputConfig tp_cfg{64.0, 8.0};
  const auto inputs = core::SimulationInputs::harmonic(0.08 * 64.0,
                                                       40.0 * 64.0);

  TextTable table{{"set-point c", "errors", "mean period", "efficiency"}};
  std::vector<double> xs;
  std::vector<double> eff;
  for (double c = 60.0; c <= 80.0; c += 1.0) {
    auto sim = make_loop(c);
    const auto trace = sim.run(inputs, 8000);
    const auto report = core::evaluate_throughput(trace, tp_cfg, 1000);
    table.add_row_values({c, static_cast<double>(report.errors),
                          trace.mean_delivered_period(1000),
                          report.efficiency});
    xs.push_back(c);
    eff.push_back(report.efficiency);
  }
  table.print(std::cout);
  rb::save_table(table, "ext_throughput_vs_setpoint");

  PlotOptions opts;
  opts.title = "pipeline efficiency vs set-point c";
  opts.x_label = "set-point c (stages)";
  opts.y_label = "efficiency (1.0 = ideal)";
  AsciiPlot plot{opts};
  plot.add_series("efficiency", xs, eff, '*');
  std::printf("\n%s\n", plot.render().c_str());

  const auto best = std::max_element(eff.begin(), eff.end());
  const double best_c = xs[static_cast<std::size_t>(best - eff.begin())];
  std::printf("static optimum: c = %.0f, efficiency %.4f\n", best_c, *best);

  // The curve must be a knee: too low -> replay storm; too high -> period
  // tax.  Both sides of the optimum must be measurably worse.
  rb::shape_check(eff.front() < *best - 0.02,
                  "set-point below the knee loses throughput to replays");
  rb::shape_check(eff.back() < *best - 0.02,
                  "set-point above the knee loses throughput to period");

  // Governor finds the knee online.
  control::GovernorConfig gov_cfg;
  gov_cfg.initial_setpoint = 78.0;
  gov_cfg.logic_depth = 64.0;
  gov_cfg.window = 200;
  gov_cfg.headroom = 2.0;
  control::SetpointGovernor governor{gov_cfg};
  auto sim = make_loop(gov_cfg.initial_setpoint);
  const auto trace = core::run_with_governor(sim, governor, inputs, 24000);
  const auto governed = core::evaluate_throughput(trace, tp_cfg, 4000);
  std::printf("\ngoverned run: final c = %.1f, efficiency %.4f "
              "(static best %.4f)\n",
              governor.setpoint(), governed.efficiency, *best);
  rb::shape_check(governed.efficiency > 0.9 * *best,
                  "the runtime governor reaches >90% of the static optimum "
                  "with no design-time tuning");
  return 0;
}
