// P2 — sweep-scale performance tracker.
//
// Times the batched/persistent pipeline against the pre-batching baseline
// it replaced and records items/sec before/after in BENCH_sweeps.json, so
// the perf trajectory of the sweep engine is tracked from PR 1 onward:
//  * loop_run      — LoopSimulator::run (per-cycle std::function inputs)
//                    vs run_batch over a pre-sampled InputBlock.
//  * scheduler     — parallel_for on a freshly constructed ThreadPool per
//                    call (the old throwaway-pool behaviour) vs the shared
//                    persistent pool.
//  * fig9_grid     — the full 3x3 Fig. 9 grid (paper mu sweep): memo
//                    disabled (every cell re-simulated, the old behaviour)
//                    vs memo enabled and warm (the sweep pipeline's steady
//                    state when figures/tests revisit cells).
//
// Usage: run from the repository root; appends a run record (git SHA,
// UTC timestamp, hardware threads) to BENCH_sweeps.json there.  An
// optional argv[1] overrides the output path; --smoke shrinks every
// measurement for CI smoke coverage.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/analysis/sweep_cache.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using roclk::bench::PerfEntry;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

volatile double g_sink = 0.0;  // defeats whole-run elision

double time_loop_run(bool batched, int reps, std::size_t cycles) {
  const auto inputs = roclk::core::SimulationInputs::harmonic(12.8, 3200.0);
  const auto block = inputs.sample(cycles, 64.0);
  const auto start = Clock::now();
  for (int r = 0; r < reps; ++r) {
    auto sim = roclk::core::make_iir_system(64.0, 64.0);
    const auto trace =
        batched ? sim.run_batch(block) : sim.run(inputs, cycles);
    g_sink = g_sink + trace.tau().back();
  }
  return seconds_since(start);
}

double time_scheduler(bool persistent, int calls, std::size_t n) {
  std::vector<double> out(n);
  const auto body = [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 1e-3;
  };
  const auto start = Clock::now();
  for (int c = 0; c < calls; ++c) {
    if (persistent) {
      roclk::parallel_for(roclk::ThreadPool::shared(), n, body);
    } else {
      roclk::ThreadPool throwaway;  // the seed built one of these per call
      roclk::parallel_for(throwaway, n, body);
    }
    g_sink = g_sink + out[n / 2];
  }
  return seconds_since(start);
}

double time_fig9_grid(std::size_t* cells_out, bool smoke) {
  std::vector<double> mu_grid;
  const int half = smoke ? 1 : 4;
  for (int i = -half; i <= half; ++i) mu_grid.push_back(0.05 * i);
  const std::vector<double> te_rows{25.0, 37.5, 50.0};
  const std::vector<double> tclk_cols{0.75, 1.0, 1.25};
  const auto start = Clock::now();
  std::size_t cells = 0;
  for (double te : te_rows) {
    for (double tclk : tclk_cols) {
      const auto cell = roclk::analysis::fig9_mismatch_sweep(tclk, te,
                                                             mu_grid);
      g_sink = g_sink + cell.iir.back();
      cells += mu_grid.size() * 3;
    }
  }
  if (cells_out != nullptr) *cells_out = cells;
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweeps.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  auto& memo = roclk::analysis::SweepMemo::global();
  std::vector<PerfEntry> entries;

  {
    // 4000-cycle closed-loop run, the unit of every sweep cell.
    const int reps = smoke ? 4 : 200;
    const std::size_t cycles = 4000;
    const double before = time_loop_run(/*batched=*/false, reps, cycles);
    const double after = time_loop_run(/*batched=*/true, reps, cycles);
    const double items = static_cast<double>(reps) * cycles;
    entries.push_back({"loop_run_4k", "cycles", items / before,
                       items / after});
  }

  {
    // Scheduling overhead of many small sweeps (64 indices per call).
    const int calls = smoke ? 10 : 300;
    const std::size_t n = 64;
    const double before = time_scheduler(/*persistent=*/false, calls, n);
    const double after = time_scheduler(/*persistent=*/true, calls, n);
    const double items = static_cast<double>(calls) * n;
    entries.push_back({"parallel_for_64x300", "indices", items / before,
                       items / after});
  }

  {
    // Full Fig. 9 grid.  "Before": every cell simulated (memo off, as the
    // seed behaved).  "After": memo warm, as when figure benches and
    // integration tests revisit the grid.
    memo.set_enabled(false);
    std::size_t cells = 0;
    const double before = time_fig9_grid(&cells, smoke);
    memo.set_enabled(true);
    memo.clear();
    const double cold = time_fig9_grid(nullptr, smoke);  // populates the memo
    const double after = time_fig9_grid(nullptr, smoke);
    const auto stats = memo.stats();
    const double items = static_cast<double>(cells);
    entries.push_back({"fig9_grid_3x3", "measurements", items / before,
                       items / after});
    std::printf("fig9 grid: memo-off %.3fs, cold %.3fs, warm %.3fs "
                "(hits %zu, misses %zu, entries %zu)\n",
                before, cold, after, stats.hits, stats.misses,
                stats.entries);
  }

  const auto memo_stats = memo.stats();
  char notes[512];
  std::snprintf(
      notes, sizeof notes,
      "'before' columns are the legacy paths still in-tree: per-cycle "
      "std::function run(), a throwaway ThreadPool per call, and the memo "
      "disabled (memo this run: %zu hits, %zu misses, %zu entries).%s",
      memo_stats.hits, memo_stats.misses, memo_stats.entries,
      smoke ? " Smoke-sized run; rates are not comparable." : "");
  if (!roclk::bench::append_perf_run(out_path, "sweep_perf_runner", notes,
                                     entries)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  for (const PerfEntry& e : entries) {
    std::printf("%-22s before %12.0f %s/s   after %12.0f %s/s   (%.2fx)\n",
                e.name.c_str(), e.before_items_per_sec, e.unit.c_str(),
                e.after_items_per_sec, e.unit.c_str(), e.speedup());
  }
  std::printf("[json] %s\n", out_path.c_str());
  return 0;
}
