// Experiments E3/E4 — paper Fig. 8: relative adaptive period
// <T_clk>/T_fixed under a harmonic HoDV.
//   Upper plot: Te = 100c fixed, sweep t_clk/c in [0.1, 10] (log).
//   Lower plot: t_clk = 1c fixed, sweep Te/c in [1, 1000] (log).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"

namespace {

void emit(const std::vector<roclk::analysis::RelativePeriodRow>& rows,
          const char* x_name, const char* csv_name, const char* title) {
  using namespace roclk;
  namespace rb = roclk::bench;

  TextTable table{{x_name, "IIR RO", "TEAtime RO", "Free RO"}};
  std::vector<double> xs;
  std::vector<double> iir;
  std::vector<double> tea;
  std::vector<double> free_ro;
  for (const auto& row : rows) {
    table.add_row_values({row.x, row.iir, row.teatime, row.free_ro});
    xs.push_back(row.x);
    iir.push_back(row.iir);
    tea.push_back(row.teatime);
    free_ro.push_back(row.free_ro);
  }
  table.print(std::cout);
  rb::save_table(table, csv_name);

  PlotOptions opts;
  opts.title = title;
  opts.x_label = x_name;
  opts.y_label = "<T_clk>/T_fixed";
  opts.log_x = true;
  opts.height = 16;
  AsciiPlot plot{opts};
  plot.add_series("IIR RO", xs, iir, 'i');
  plot.add_series("TEAtime RO", xs, tea, 't');
  plot.add_series("Free RO", xs, free_ro, 'f');
  std::printf("\n%s\n", plot.render().c_str());
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Fig. 8 (upper) — relative adaptive period vs CDN delay",
      "Te = 100c; t_clk/c swept logarithmically over [0.1, 10].\n"
      "A value below 1 means the adaptive clock recovered safety margin.");
  const auto tclk_grid = analysis::log_space(0.1, 10.0, 21);
  const auto upper = analysis::fig8_cdn_delay_sweep(tclk_grid, 100.0);
  emit(upper, "tclk/c", "fig8_upper_cdn_sweep",
       "Fig. 8 upper: <T>/T_fixed vs t_clk/c  (Te = 100c)");

  rb::print_header(
      "Fig. 8 (lower) — relative adaptive period vs perturbation period",
      "t_clk = 1c; Te/c swept logarithmically over [2, 1000].  (The paper's "
      "axis starts at 1,\nbut one sample per period aliases a Te = 1c tone "
      "to DC in any per-cycle model, so the\nsweep starts at the Nyquist "
      "limit of the discrete loop.)");
  const auto te_grid = analysis::log_space(2.0, 1000.0, 25);
  const auto lower = analysis::fig8_frequency_sweep(te_grid, 1.0);
  emit(lower, "Te/c", "fig8_lower_frequency_sweep",
       "Fig. 8 lower: <T>/T_fixed vs Te/c  (t_clk = 1c)");

  // The paper's reading of Fig. 8.
  {
    // Upper: for t_clk/c <= ~5 the IIR RO is the best (or tied best).
    int iir_best = 0;
    int count = 0;
    for (const auto& row : upper) {
      if (row.x > 5.0) continue;
      ++count;
      if (row.iir <= row.teatime + 0.01 && row.iir <= row.free_ro + 0.01) {
        ++iir_best;
      }
    }
    rb::shape_check(iir_best >= count * 2 / 3,
                    "upper: IIR RO best (or tied) over most of t_clk/c <= 5");
    // Upper: large CDN delay degrades every adaptive system toward/past 1.
    const auto& last = upper.back();
    const auto& first = upper.front();
    rb::shape_check(last.iir > first.iir && last.free_ro > first.free_ro,
                    "upper: relative period degrades as t_clk grows");
  }
  {
    // Lower: at high frequency (small Te) adaptation buys little; free RO
    // is the first to dip under the fixed clock; for Te/c > 200 IIR and
    // free RO converge.
    const auto& fastest = lower.front();
    rb::shape_check(fastest.free_ro <= fastest.iir + 0.02 &&
                        fastest.free_ro <= fastest.teatime + 0.02,
                    "lower: free RO best at the highest frequencies");
    double gap = 0.0;
    int tail = 0;
    for (const auto& row : lower) {
      if (row.x < 200.0) continue;
      gap += std::fabs(row.iir - row.free_ro);
      ++tail;
    }
    rb::shape_check(tail > 0 && gap / tail < 0.02,
                    "lower: IIR RO ~ free RO for Te/c > 200");
    const auto& slowest = lower.back();
    rb::shape_check(slowest.iir < 0.9,
                    "lower: slow perturbations recover real margin (<0.9)");
  }
  return 0;
}
