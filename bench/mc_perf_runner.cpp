// P4 — sharded Monte-Carlo performance tracker.
//
// Times the yield Monte-Carlo (analysis/yield: D2D + WID + RND on every
// path of every fabricated chip) along the splittable-RNG trajectory:
//  * mc_sharded     — the single-stream reference execution (strictly
//    sequential, pool = nullptr) vs the same keyed sampler sharded across
//    ThreadPool::shared().
//  * mc_threads_tN  — the sequential reference vs a local N-thread pool,
//    for N in {1, 2, 4, 8}: the multi-thread scaling curve.
//
// Because every chip draws from its own StreamKey substream, all paths
// must agree *bitwise* per chip; the run aborts without recording if any
// pool size diverges from the sequential reference.
//
// Usage: run from the repository root; appends a run record to
// BENCH_sweeps.json.  An optional argv[1] overrides the output path;
// --smoke shrinks the study for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/yield.hpp"
#include "roclk/common/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

volatile double g_sink = 0.0;  // defeats whole-run elision

/// Best-of-reps wall time (minimum is robust against scheduler noise).
template <class Fn>
double best_of(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const auto result = fn();
    best = std::min(best, seconds_since(start));
    g_sink = g_sink + result.back();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweeps.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  roclk::analysis::YieldConfig config;
  config.chips = smoke ? 64 : 2000;
  config.paths = 64;
  config.seed = 20260808;
  const int reps = smoke ? 1 : 5;

  const int hw_threads =
      static_cast<int>(roclk::ThreadPool::shared().size()) + 1;
  std::printf("[mc] %zu chips x %zu paths, %d hardware threads\n",
              config.chips, config.paths, hw_threads);

  // Equivalence gate first: every pool size must reproduce the sequential
  // single-stream samples bit for bit, or the speedups are meaningless.
  const auto reference =
      roclk::analysis::sample_worst_paths(config, nullptr);
  bool identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    roclk::ThreadPool pool{threads};
    if (roclk::analysis::sample_worst_paths(config, &pool) != reference) {
      std::fprintf(stderr, "pool of %zu diverges from sequential\n", threads);
      identical = false;
    }
  }
  if (roclk::analysis::sample_worst_paths(
          config, &roclk::ThreadPool::shared()) != reference) {
    std::fprintf(stderr, "shared pool diverges from sequential\n");
    identical = false;
  }
  roclk::bench::shape_check(
      identical, "sharded yield Monte-Carlo bitwise identical to the "
                 "sequential single-stream reference at every pool size");
  if (!identical) return 1;

  const double sequential_s = best_of(reps, [&] {
    return roclk::analysis::sample_worst_paths(config, nullptr);
  });
  const double shared_s = best_of(reps, [&] {
    return roclk::analysis::sample_worst_paths(config,
                                               &roclk::ThreadPool::shared());
  });

  const double items = static_cast<double>(config.chips);
  const std::string suffix = smoke ? "_smoke" : "";
  std::vector<roclk::bench::PerfEntry> entries;
  entries.push_back({"mc_sharded" + suffix, "chips", items / sequential_s,
                     items / shared_s, hw_threads, "scalar"});

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    roclk::ThreadPool pool{threads};
    const double pool_s = best_of(reps, [&] {
      return roclk::analysis::sample_worst_paths(config, &pool);
    });
    char name[32];
    std::snprintf(name, sizeof name, "mc_threads_t%zu%s", threads,
                  suffix.c_str());
    entries.push_back({name, "chips", items / sequential_s, items / pool_s,
                       static_cast<int>(threads) + 1, "scalar"});
  }

  char notes[512];
  std::snprintf(
      notes, sizeof notes,
      "%zu-chip x %zu-path yield Monte-Carlo on splittable CounterRng "
      "streams. mc_sharded: sequential single-stream reference vs "
      "ThreadPool::shared(); mc_threads_tN: reference vs a local N-worker "
      "pool (the caller also claims ranges, so tN uses N+1 threads). "
      "Per-chip samples verified bitwise identical across all pool sizes "
      "before timing; best of %d reps.%s",
      config.chips, config.paths, reps,
      smoke ? " Smoke-sized run; rates are not comparable." : "");
  if (!roclk::bench::append_perf_run(out_path, "mc_perf_runner", notes,
                                     entries)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  for (const auto& e : entries) {
    std::printf(
        "%-18s before %10.0f %s/s   after %10.0f %s/s   (%.2fx, %d thr)\n",
        e.name.c_str(), e.before_items_per_sec, e.unit.c_str(),
        e.after_items_per_sec, e.unit.c_str(), e.speedup(), e.threads);
  }
  std::printf("[json] %s\n", out_path.c_str());
  return 0;
}
