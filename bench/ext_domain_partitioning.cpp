// Extension bench — clock-domain partitioning: section II-A's "trade-off
// ... relates ... the clock domain size" turned into an architecture
// experiment.  A die too large for one adaptive clock (its H-tree delay
// violates the t_clk < Te/6 budget) is split into K x K domains, each with
// its own RO + TDC loop; the chip-level margin is the worst domain's.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/multi_domain.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/variation/scenario.hpp"
#include "roclk/variation/sources.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — adaptive clock-domain partitioning",
      "8 mm die, buffered H-tree per domain; IIR RO loop in every domain.\n"
      "Environment: 15% harmonic HoDV plus a 10% hotspot in one corner.");

  analysis::MultiDomainConfig cfg;
  cfg.die_size_mm = 8.0;
  cfg.cycles = 8000;
  cfg.transient_skip = 2000;

  // Perturbation fast enough to defeat the whole-die tree.
  const double whole_tclk = [&] {
    auto t = cfg.tree;
    t.size_mm = cfg.die_size_mm;
    return chip::ClockDomainGeometry{t}.cdn_delay_stages();
  }();
  const double te = 4.0 * whole_tclk;
  auto env = std::make_unique<variation::CompositeVariation>();
  env->add(variation::make_harmonic_hodv(0.15, te));
  env->add(std::make_unique<variation::TemperatureHotspot>(
      0.10, variation::DiePoint{0.85, 0.15}, 0.15, 64.0 * 500.0,
      64.0 * 3000.0));
  const double fixed = 64.0 * (1.0 + 0.15 + 0.10);

  std::printf("whole-die t_clk = %.1f stages; HoDV period Te = %.1f stages "
              "(t_clk = Te/4 > Te/6 budget)\n\n", whole_tclk, te);

  const std::vector<std::size_t> sides{1, 2, 3, 4, 6};
  const auto results =
      analysis::partitioning_sweep(cfg, *env, fixed, sides);

  TextTable table{{"domains", "domain (mm)", "t_clk (stages)",
                   "worst SM (stages)", "worst rel. period"}};
  std::vector<double> xs;
  std::vector<double> margins;
  for (const auto& r : results) {
    table.add_row_values({static_cast<double>(r.domains), r.domain_size_mm,
                          r.cdn_delay_stages, r.worst_safety_margin,
                          r.worst_relative_period});
    xs.push_back(static_cast<double>(r.domains));
    margins.push_back(r.worst_safety_margin);
  }
  table.print(std::cout);
  rb::save_table(table, "ext_domain_partitioning");

  PlotOptions opts;
  opts.title = "chip-level safety margin vs number of clock domains";
  opts.x_label = "domains";
  opts.y_label = "worst SM (stages)";
  opts.log_x = true;
  AsciiPlot plot{opts};
  plot.add_series("worst domain SM", xs, margins, '*');
  std::printf("\n%s\n", plot.render().c_str());

  rb::shape_check(results.back().worst_safety_margin <
                      results.front().worst_safety_margin,
                  "partitioning recovers margin a single domain cannot");
  rb::shape_check(results.back().cdn_delay_stages < te / 6.0,
                  "fine partitions bring t_clk back inside the Te/6 budget");
  std::printf(
      "\nReading: the returns diminish once t_clk clears the Te/6 budget — "
      "further splitting\nbuys little margin but keeps multiplying clock "
      "generators and domain crossings.\n");
  return 0;
}
