// Ablation A3 — closed-loop stability vs CDN delay M (explains the Fig. 8
// upper-plot degradation).  For the paper controller we tabulate the
// spectral radius of D(z) + N(z) z^{-M-2} as M grows, the Jury verdict,
// and a time-domain confirmation at the boundary.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "roclk/control/constraints.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/signal/jury.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A3 — closed-loop stability vs CDN delay M",
      "Characteristic polynomial D(z) + N(z) z^{-M-2} for the paper IIR.\n"
      "The delay margin bounds the clock-domain size an IIR RO can serve.");

  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());

  TextTable table{{"M", "spectral radius", "roots verdict", "Jury verdict"}};
  for (std::size_t m = 0; m <= 16; ++m) {
    const auto s = control::closed_loop_stability(n, d, m);
    const auto jury =
        signal::jury_test(control::closed_loop_characteristic(n, d, m));
    table.add_row({std::to_string(m),
                   format_double(s.is_ok() ? s.value().spectral_radius : -1.0,
                                 6),
                   s.is_ok() && s.value().stable ? "stable" : "unstable",
                   jury.is_ok() && jury.value().stable ? "stable"
                                                       : "unstable"});
  }
  table.print(std::cout);
  rb::save_table(table, "ablation_stability");

  const auto max_m = control::max_stable_cdn_delay(n, d, 256);
  if (max_m) {
    std::printf("\nmax stable CDN delay: M = %zu (t_clk ~ %zu c)\n", *max_m,
                *max_m);
  }

  // Time-domain confirmation: just inside the margin a small disturbance
  // rings down; just outside it rings up.
  auto probe = [&](std::size_t m) {
    core::LoopConfig cfg;
    cfg.setpoint_c = 64.0;
    cfg.cdn_delay_stages = 64.0 * static_cast<double>(m);
    cfg.quantize_lro = false;
    cfg.tdc_quantization = sensor::Quantization::kNone;
    cfg.min_length = 1;
    cfg.max_length = 1 << 20;
    core::LoopSimulator sim{
        cfg, std::make_unique<control::IirControlReference>()};
    core::SimulationInputs inputs;
    inputs.mu = [](double t) { return t < 64.0 * 70.0 ? 0.0 : 0.25; };
    const auto trace = sim.run(inputs, 3000);
    const auto err = trace.timing_error(64.0);
    double early = 0.0;
    double late = 0.0;
    for (std::size_t k = 100; k < 1000; ++k) {
      early = std::max(early, std::fabs(err[k]));
    }
    for (std::size_t k = 2000; k < err.size(); ++k) {
      late = std::max(late, std::fabs(err[k]));
    }
    return std::pair{early, late};
  };

  if (max_m && *max_m >= 1 && *max_m < 64) {
    const auto inside = probe(*max_m - 1);
    const auto outside = probe(*max_m + 2);
    std::printf(
        "time-domain probe: M=%zu ring |err| early %.3f -> late %.3f;  "
        "M=%zu early %.3f -> late %.3f\n",
        *max_m - 1, inside.first, inside.second, *max_m + 2, outside.first,
        outside.second);
    rb::shape_check(inside.second < 1.0,
                    "inside the delay margin the loop settles");
    rb::shape_check(outside.second > outside.first,
                    "outside the delay margin the loop rings up");
  }
  return 0;
}
