// P3 — ensemble-scale Monte-Carlo performance tracker.
//
// Times a 256-trial x 4000-cycle Monte-Carlo (the paper's IIR system under
// a harmonic HoDV, one static mismatch per trial) two ways:
//  * before — the PR 1 per-trial pipeline: SimulationInputs::harmonic +
//    sample(), one LoopSimulator per trial, run_batch materialising a full
//    SimulationTrace, then evaluate_run.
//  * after  — the lane-parallel pipeline: sample_homogeneous_ensemble
//    (waveform evaluated once per cycle, broadcast to all lanes), one
//    EnsembleSimulator over all trials, metrics streamed through
//    MetricsReducer with no traces.
//
// The two paths must agree bit-for-bit per lane (the ensemble engine's
// core guarantee); the run aborts without recording if they do not.
//
// Usage: run from the repository root; appends a run record (git SHA, UTC
// timestamp, hardware threads) to BENCH_sweeps.json.  An optional argv[1]
// overrides the output path; --smoke shrinks the study for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/signal/waveform.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using roclk::analysis::RunMetrics;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

volatile double g_sink = 0.0;  // defeats whole-run elision

struct Study {
  std::size_t trials{256};
  std::size_t cycles{4000};
  std::size_t skip{1000};
  double setpoint_c{64.0};
  double amplitude{12.8};  // 0.2 c, the paper's HoDV amplitude
  double period{3200.0};   // T_e = 50 c
  double fixed_period{76.8};  // c * 1.2, the HoDV design margin
  /// One static mismatch per trial, spread over +-0.1 c.
  [[nodiscard]] std::vector<double> mus() const {
    std::vector<double> out(trials);
    for (std::size_t w = 0; w < trials; ++w) {
      const double frac = trials > 1
          ? static_cast<double>(w) / static_cast<double>(trials - 1)
          : 0.5;
      out[w] = setpoint_c * (-0.1 + 0.2 * frac);
    }
    return out;
  }
};

/// PR 1 Monte-Carlo: sample, simulate and evaluate one trial at a time.
std::vector<RunMetrics> run_per_trial(const Study& s,
                                      const std::vector<double>& mus) {
  std::vector<RunMetrics> out(mus.size());
  for (std::size_t w = 0; w < mus.size(); ++w) {
    const auto inputs =
        roclk::core::SimulationInputs::harmonic(s.amplitude, s.period, mus[w]);
    const auto block = inputs.sample(s.cycles, s.setpoint_c);
    auto sim = roclk::core::make_iir_system(s.setpoint_c, s.setpoint_c);
    const auto trace = sim.run_batch(block);
    out[w] = roclk::analysis::evaluate_run(trace, s.setpoint_c,
                                           s.fixed_period, s.skip);
  }
  return out;
}

/// Ensemble Monte-Carlo: tile-streamed broadcast sampling, lane-parallel
/// kernel, streaming metrics.
std::vector<RunMetrics> run_ensemble(const Study& s,
                                     const std::vector<double>& mus) {
  roclk::core::LoopConfig loop;
  loop.setpoint_c = s.setpoint_c;
  loop.cdn_delay_stages = s.setpoint_c;
  loop.mode = roclk::core::GeneratorMode::kControlledRo;
  const roclk::control::IirControlHardware prototype{
      roclk::control::paper_iir_config()};
  auto ensemble =
      roclk::core::EnsembleSimulator::uniform(loop, &prototype, mus.size());
  return roclk::analysis::evaluate_homogeneous_mc(
      ensemble, roclk::signal::SineWaveform{s.amplitude, s.period}, mus,
      s.cycles, s.setpoint_c, {s.fixed_period}, s.skip, /*parallel=*/true);
}

bool bitwise_equal(const std::vector<RunMetrics>& a,
                   const std::vector<RunMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].safety_margin != b[w].safety_margin ||
        a[w].mean_period != b[w].mean_period ||
        a[w].relative_adaptive_period != b[w].relative_adaptive_period ||
        a[w].violations != b[w].violations ||
        a[w].tau_ripple != b[w].tau_ripple) {
      std::fprintf(stderr, "lane %zu metrics diverge\n", w);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweeps.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  Study s;
  int reps = 5;
  if (smoke) {
    s.trials = 8;
    s.cycles = 1000;
    s.skip = 250;
    reps = 1;
  }
  const auto mus = s.mus();

  // Equivalence gate first: the speedup is only worth recording if the
  // ensemble reproduced the per-trial metrics exactly.
  const auto scalar_metrics = run_per_trial(s, mus);
  const auto ensemble_metrics = run_ensemble(s, mus);
  const bool identical = bitwise_equal(scalar_metrics, ensemble_metrics);
  roclk::bench::shape_check(
      identical, "ensemble per-lane metrics bit-identical to per-trial "
                 "run_batch + evaluate_run");
  if (!identical) return 1;

  // Best-of-reps: the minimum time per path is robust against scheduler
  // and frequency noise that would otherwise pollute a summed total.
  double before_s = std::numeric_limits<double>::infinity();
  double after_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    const auto a = run_per_trial(s, mus);
    before_s = std::min(before_s, seconds_since(start));
    g_sink = g_sink + a.back().mean_period;

    start = Clock::now();
    const auto b = run_ensemble(s, mus);
    after_s = std::min(after_s, seconds_since(start));
    g_sink = g_sink + b.back().mean_period;
  }

  const double items = static_cast<double>(s.trials) *
                       static_cast<double>(s.cycles);
  std::vector<roclk::bench::PerfEntry> entries;
  entries.push_back({smoke ? "mc_ensemble_smoke" : "mc_ensemble_256x4k",
                     "lane_cycles", items / before_s, items / after_s});

  char notes[512];
  std::snprintf(
      notes, sizeof notes,
      "%zu-trial x %zu-cycle IIR Monte-Carlo under harmonic HoDV. 'before' "
      "is the PR 1 per-trial path (sample + run_batch + full trace + "
      "evaluate_run); 'after' is sample_homogeneous_ensemble + "
      "EnsembleSimulator + streaming MetricsReducer. Per-lane metrics "
      "verified bit-identical before timing; best of %d reps.%s",
      s.trials, s.cycles, reps,
      smoke ? " Smoke-sized run; rates are not comparable." : "");
  if (!roclk::bench::append_perf_run(out_path, "ensemble_perf_runner", notes,
                                     entries)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  for (const auto& e : entries) {
    std::printf("%-22s before %12.0f %s/s   after %12.0f %s/s   (%.2fx)\n",
                e.name.c_str(), e.before_items_per_sec, e.unit.c_str(),
                e.after_items_per_sec, e.unit.c_str(), e.speedup());
  }
  std::printf("[json] %s\n", out_path.c_str());
  return 0;
}
