// P3 — ensemble-scale Monte-Carlo performance tracker.
//
// Times a 256-trial x 4000-cycle Monte-Carlo (the paper's IIR system under
// a harmonic HoDV, one static mismatch per trial) along the optimisation
// trajectory:
//  * mc_ensemble      — the PR 1 per-trial pipeline (one LoopSimulator per
//    trial, full trace, evaluate_run) vs the lane-parallel ensemble
//    pipeline (streamed sampling + EnsembleSimulator + MetricsReducer).
//  * ensemble_simd    — the ensemble pipeline with the SIMD backend forced
//    to the portable scalar pack vs the native vector backend, both
//    single-threaded: the pure vectorization speedup.
//  * ensemble_threads — the native-backend ensemble single-threaded vs
//    tiled across ThreadPool::shared(): the threading speedup.
//
// All paths must agree bit-for-bit per lane (the ensemble engine's core
// guarantee, on every backend); the run aborts without recording if any
// pair diverges.
//
// Usage: run from the repository root; appends a run record (full git SHA,
// UTC timestamp, hardware threads, per-entry thread count and SIMD
// backend) to BENCH_sweeps.json.  An optional argv[1] overrides the output
// path; --smoke shrinks the study for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/common/simd.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/signal/waveform.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using roclk::analysis::RunMetrics;
namespace simd = roclk::simd;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

volatile double g_sink = 0.0;  // defeats whole-run elision

/// Scoped simd-backend override (restores env/native resolution on exit).
struct BackendOverride {
  explicit BackendOverride(simd::Backend backend) {
    simd::set_backend_override(backend);
  }
  ~BackendOverride() { simd::set_backend_override(std::nullopt); }
  BackendOverride(const BackendOverride&) = delete;
  BackendOverride& operator=(const BackendOverride&) = delete;
};

struct Study {
  std::size_t trials{256};
  std::size_t cycles{4000};
  std::size_t skip{1000};
  double setpoint_c{64.0};
  double amplitude{12.8};  // 0.2 c, the paper's HoDV amplitude
  double period{3200.0};   // T_e = 50 c
  double fixed_period{76.8};  // c * 1.2, the HoDV design margin
  /// One static mismatch per trial, spread over +-0.1 c.
  [[nodiscard]] std::vector<double> mus() const {
    std::vector<double> out(trials);
    for (std::size_t w = 0; w < trials; ++w) {
      const double frac = trials > 1
          ? static_cast<double>(w) / static_cast<double>(trials - 1)
          : 0.5;
      out[w] = setpoint_c * (-0.1 + 0.2 * frac);
    }
    return out;
  }
};

/// PR 1 Monte-Carlo: sample, simulate and evaluate one trial at a time.
std::vector<RunMetrics> run_per_trial(const Study& s,
                                      const std::vector<double>& mus) {
  std::vector<RunMetrics> out(mus.size());
  for (std::size_t w = 0; w < mus.size(); ++w) {
    const auto inputs =
        roclk::core::SimulationInputs::harmonic(s.amplitude, s.period, mus[w]);
    const auto block = inputs.sample(s.cycles, s.setpoint_c);
    auto sim = roclk::core::make_iir_system(s.setpoint_c, s.setpoint_c);
    const auto trace = sim.run_batch(block);
    out[w] = roclk::analysis::evaluate_run(trace, s.setpoint_c,
                                           s.fixed_period, s.skip);
  }
  return out;
}

/// Ensemble Monte-Carlo: tile-streamed broadcast sampling, lane-parallel
/// kernel, streaming metrics.
std::vector<RunMetrics> run_ensemble(const Study& s,
                                     const std::vector<double>& mus,
                                     bool parallel) {
  roclk::core::LoopConfig loop;
  loop.setpoint_c = s.setpoint_c;
  loop.cdn_delay_stages = s.setpoint_c;
  loop.mode = roclk::core::GeneratorMode::kControlledRo;
  const roclk::control::IirControlHardware prototype{
      roclk::control::paper_iir_config()};
  auto ensemble =
      roclk::core::EnsembleSimulator::uniform(loop, &prototype, mus.size());
  return roclk::analysis::evaluate_homogeneous_mc(
      ensemble, roclk::signal::SineWaveform{s.amplitude, s.period}, mus,
      s.cycles, s.setpoint_c, {s.fixed_period}, s.skip, parallel);
}

/// Ensemble Monte-Carlo on an explicit pool (nullptr = sequential): the
/// thread-scaling sweep's execution path.
std::vector<RunMetrics> run_ensemble_pool(const Study& s,
                                          const std::vector<double>& mus,
                                          roclk::ThreadPool* pool) {
  roclk::core::LoopConfig loop;
  loop.setpoint_c = s.setpoint_c;
  loop.cdn_delay_stages = s.setpoint_c;
  loop.mode = roclk::core::GeneratorMode::kControlledRo;
  const roclk::control::IirControlHardware prototype{
      roclk::control::paper_iir_config()};
  auto ensemble =
      roclk::core::EnsembleSimulator::uniform(loop, &prototype, mus.size());
  return roclk::analysis::evaluate_homogeneous_mc(
      ensemble, roclk::signal::SineWaveform{s.amplitude, s.period}, mus,
      s.cycles, s.setpoint_c, {s.fixed_period}, s.skip, pool);
}

bool bitwise_equal(const std::vector<RunMetrics>& a,
                   const std::vector<RunMetrics>& b, const char* label) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].safety_margin != b[w].safety_margin ||
        a[w].mean_period != b[w].mean_period ||
        a[w].relative_adaptive_period != b[w].relative_adaptive_period ||
        a[w].violations != b[w].violations ||
        a[w].tau_ripple != b[w].tau_ripple) {
      std::fprintf(stderr, "%s: lane %zu metrics diverge\n", label, w);
      return false;
    }
  }
  return true;
}

/// Best-of-reps wall time of one configuration (minimum is robust against
/// scheduler and frequency noise).
template <class Fn>
double best_of(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const auto result = fn();
    best = std::min(best, seconds_since(start));
    g_sink = g_sink + result.back().mean_period;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweeps.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  Study s;
  int reps = 5;
  if (smoke) {
    s.trials = 8;
    s.cycles = 1000;
    s.skip = 250;
    reps = 1;
  }
  const auto mus = s.mus();

  const simd::Backend native = simd::native_backend();
  const int pool_threads =
      static_cast<int>(roclk::ThreadPool::shared().size()) + 1;
  std::printf("[simd] native backend: %s (dispatching: %s), %d pool threads\n",
              simd::to_string(native), simd::to_string(simd::active_backend()),
              pool_threads);

  // Equivalence gates first: the speedups are only worth recording if
  // every path reproduced the per-trial metrics exactly, on the forced
  // scalar pack AND the native vector backend.
  const auto per_trial_metrics = run_per_trial(s, mus);
  std::vector<RunMetrics> scalar_pack_metrics;
  {
    BackendOverride forced{simd::Backend::kScalar};
    scalar_pack_metrics = run_ensemble(s, mus, /*parallel=*/false);
  }
  std::vector<RunMetrics> native_metrics;
  {
    BackendOverride forced{native};
    native_metrics = run_ensemble(s, mus, /*parallel=*/true);
  }
  const bool identical =
      bitwise_equal(per_trial_metrics, scalar_pack_metrics, "scalar pack") &&
      bitwise_equal(per_trial_metrics, native_metrics, "native backend");
  roclk::bench::shape_check(
      identical, "ensemble per-lane metrics bit-identical to per-trial "
                 "run_batch + evaluate_run on scalar AND native backends");
  if (!identical) return 1;

  double per_trial_s = best_of(reps, [&] { return run_per_trial(s, mus); });
  double scalar_1t_s = 0.0;
  {
    BackendOverride forced{simd::Backend::kScalar};
    scalar_1t_s =
        best_of(reps, [&] { return run_ensemble(s, mus, false); });
  }
  double native_1t_s = 0.0;
  double native_nt_s = 0.0;
  {
    BackendOverride forced{native};
    native_1t_s =
        best_of(reps, [&] { return run_ensemble(s, mus, false); });
    native_nt_s =
        best_of(reps, [&] { return run_ensemble(s, mus, true); });
  }

  const double items = static_cast<double>(s.trials) *
                       static_cast<double>(s.cycles);
  const std::string suffix = smoke ? "_smoke" : "_256x4k";
  std::vector<roclk::bench::PerfEntry> entries;
  entries.push_back({"mc_ensemble" + suffix, "lane_cycles",
                     items / per_trial_s, items / native_nt_s, pool_threads,
                     simd::to_string(native)});
  entries.push_back({"ensemble_simd" + suffix, "lane_cycles",
                     items / scalar_1t_s, items / native_1t_s, 1,
                     simd::to_string(native)});
  entries.push_back({"ensemble_threads" + suffix, "lane_cycles",
                     items / native_1t_s, items / native_nt_s, pool_threads,
                     simd::to_string(native)});

  // Thread-scaling sweep: the sequential ensemble vs a local pool of 1, 2,
  // 4 and 8 workers (the caller claims ranges too, so tN runs on N+1
  // threads).  Per-lane metrics are scheduling-invariant, so the sweep
  // needs no further equivalence gating beyond the checks above.
  {
    BackendOverride forced{native};
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      roclk::ThreadPool pool{threads};
      const double pool_s = best_of(
          reps, [&] { return run_ensemble_pool(s, mus, &pool); });
      char name[48];
      std::snprintf(name, sizeof name, "ensemble_threads_t%zu%s", threads,
                    suffix.c_str());
      entries.push_back({name, "lane_cycles", items / native_1t_s,
                         items / pool_s, static_cast<int>(threads) + 1,
                         simd::to_string(native)});
    }
  }

  char notes[512];
  std::snprintf(
      notes, sizeof notes,
      "%zu-trial x %zu-cycle IIR Monte-Carlo under harmonic HoDV. "
      "mc_ensemble: PR 1 per-trial path vs threaded native-SIMD ensemble; "
      "ensemble_simd: forced-scalar pack vs native backend, 1 thread; "
      "ensemble_threads: native backend, 1 thread vs pool; "
      "ensemble_threads_tN: 1 thread vs a local N-worker pool (caller "
      "claims ranges too, so tN uses N+1 threads). Per-lane metrics "
      "verified bit-identical on both backends before timing; "
      "best of %d reps.%s",
      s.trials, s.cycles, reps,
      smoke ? " Smoke-sized run; rates are not comparable." : "");
  if (!roclk::bench::append_perf_run(out_path, "ensemble_perf_runner", notes,
                                     entries)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  for (const auto& e : entries) {
    std::printf(
        "%-24s before %12.0f %s/s   after %12.0f %s/s   (%.2fx, %d thr, %s)\n",
        e.name.c_str(), e.before_items_per_sec, e.unit.c_str(),
        e.after_items_per_sec, e.unit.c_str(), e.speedup(), e.threads,
        e.simd_backend.c_str());
  }
  std::printf("[json] %s\n", out_path.c_str());
  return 0;
}
