// Ablation A7 — systematic IIR design-space exploration.  The paper chose
// its coefficient set by hand for "a balance between filter adaptation
// velocity and low output ripple"; this bench enumerates every eq.-10-valid
// power-of-two tap set (up to 6 taps), scores velocity / ripple / delay
// margin, and prints the Pareto frontier with the paper's set marked.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "roclk/analysis/iir_design.hpp"
#include "roclk/common/table.hpp"

namespace {

std::string taps_to_string(const std::vector<double>& taps) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (i) os << ", ";
    os << taps[i];
  }
  os << "}";
  return os.str();
}

bool same_taps(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A7 — IIR coefficient design space (eq. 10 candidates)",
      "Scenario: c = 64, t_clk = 1c; velocity = settling after an 8-stage "
      "mismatch step;\nripple = steady-state tau peak-to-peak under HoDV "
      "0.2c @ 50c; margin = max stable M.");

  analysis::DesignSpaceOptions options;  // full 6-tap space
  auto candidates = analysis::enumerate_candidates(options);
  const auto front = analysis::pareto_front(candidates);
  const auto paper =
      analysis::score_candidate(control::paper_iir_config(), options);

  std::printf("feasible eq.-10 candidates at M = 1: %zu; Pareto-efficient: "
              "%zu\n\n", candidates.size(), front.size());

  TextTable table{{"taps", "k*", "settling (cycles)", "tau ripple",
                   "max stable M", "pareto", "paper"}};
  // Show the frontier plus the paper's set.
  bool paper_in_enumeration = false;
  for (const auto& c : candidates) {
    const bool is_paper =
        same_taps(c.config.taps, control::paper_iir_config().taps);
    paper_in_enumeration |= is_paper;
    if (!c.pareto && !is_paper) continue;
  }
  // pareto flags are set by pareto_front on its own copy; re-mark here.
  for (auto& c : candidates) {
    c.pareto = false;
    for (const auto& f : front) {
      if (same_taps(c.config.taps, f.config.taps)) c.pareto = true;
    }
  }
  for (const auto& c : candidates) {
    const bool is_paper =
        same_taps(c.config.taps, control::paper_iir_config().taps);
    if (!c.pareto && !is_paper) continue;
    table.add_row({taps_to_string(c.config.taps),
                   format_double(c.config.k_star, 4),
                   std::to_string(c.settling_cycles),
                   format_double(c.tau_ripple, 2),
                   std::to_string(c.max_stable_m), c.pareto ? "yes" : "no",
                   is_paper ? "<-- paper" : ""});
  }
  table.print(std::cout);
  rb::save_table(table, "ablation_design_space");

  std::printf("\npaper set scored in the same scenario: settling %zu, "
              "ripple %.2f, max M %zu\n",
              paper.settling_cycles, paper.tau_ripple, paper.max_stable_m);

  // The paper's set must be Pareto-efficient or within one quantum of a
  // frontier member on every axis.
  bool competitive = false;
  for (const auto& f : front) {
    if (paper.settling_cycles <= f.settling_cycles + 50 &&
        paper.tau_ripple <= f.tau_ripple + 1.0 &&
        paper.max_stable_m + 1 >= f.max_stable_m) {
      competitive = true;
      break;
    }
  }
  for (const auto& f : front) {
    if (same_taps(f.config.taps, control::paper_iir_config().taps)) {
      competitive = true;
    }
  }
  rb::shape_check(competitive,
                  "the paper's hand-picked set sits on or near the Pareto "
                  "frontier");
  rb::shape_check(paper.max_stable_m >= 10,
                  "the paper's set carries a double-digit delay margin "
                  "(robust to large clock domains)");
  return 0;
}
