// Extension bench — the introduction's margin economics in energy terms:
// "SM can be added to the supply voltage instead of to the clock period.
// In this case the yield is increased but at the price of more power
// consumption."  Compares, under the alpha-power-law model, the three ways
// to absorb a delay uncertainty u: period margin, voltage margin, and the
// paper's adaptive clock (which pays only the *measured mean* slowdown —
// taken from the Monte-Carlo yield analysis).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/yield.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/power/voltage_model.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Extension — energy/throughput cost of period vs voltage vs adaptive "
      "margins",
      "Alpha-power-law delay (alpha = 1.3, Vth = 0.3 Vn), 25% leakage "
      "share.\nAdaptive operating point from the yield Monte-Carlo "
      "(mean measured slowdown).");

  const power::ProcessParams process;

  // Ground the adaptive strategy in measurement: the yield module's mean
  // per-chip extra period under D2D+WID+RND process variation.
  analysis::YieldConfig ycfg;
  ycfg.chips = 500;
  const auto cmp = analysis::compare_margins(0.99, ycfg);
  const double u = cmp.fixed_margin_needed / ycfg.setpoint_c;
  const double adaptive_extra =
      cmp.adaptive_mean_extra_period / ycfg.setpoint_c;

  std::printf("measured: fixed clock needs u = %.1f%% margin for 99%% yield; "
              "adaptive pays %.1f%% on average\n\n",
              100.0 * u, 100.0 * adaptive_extra);

  TextTable table{{"strategy", "V/Vn", "T/Tn", "throughput", "energy/op"}};
  const auto period_op = power::period_margin_strategy(u, process);
  const auto voltage_op = power::voltage_margin_strategy(u, process);
  const auto adaptive_op =
      power::adaptive_clock_strategy(adaptive_extra, process);

  auto add = [&table](const power::OperatingPoint& op) {
    table.add_row({op.name, format_double(op.vdd_factor, 3),
                   format_double(op.period_factor, 3),
                   format_double(op.throughput_factor, 3),
                   format_double(op.energy_factor, 3)});
  };
  add(period_op);
  if (voltage_op.is_ok()) {
    add(voltage_op.value());
  } else {
    std::printf("voltage margin infeasible: %s\n",
                voltage_op.status().to_string().c_str());
  }
  add(adaptive_op);
  table.print(std::cout);
  rb::save_table(table, "ext_energy_strategies");

  // Sweep the uncertainty: energy cost of the voltage-margin strategy vs u.
  TextTable sweep{{"uncertainty u", "V/Vn needed", "energy/op (voltage)",
                   "energy/op (period)", "throughput (period)"}};
  std::vector<double> xs;
  std::vector<double> e_volt;
  std::vector<double> e_period;
  for (double uu = 0.0; uu <= 0.40001; uu += 0.04) {
    const auto vop = power::voltage_margin_strategy(uu, process);
    if (!vop.is_ok()) break;
    const auto pop = power::period_margin_strategy(uu, process);
    sweep.add_row_values({uu, vop.value().vdd_factor,
                          vop.value().energy_factor, pop.energy_factor,
                          pop.throughput_factor});
    xs.push_back(uu);
    e_volt.push_back(vop.value().energy_factor);
    e_period.push_back(pop.energy_factor);
  }
  std::printf("\n");
  sweep.print(std::cout);
  rb::save_table(sweep, "ext_energy_vs_uncertainty");

  PlotOptions opts;
  opts.title = "energy per op vs absorbed delay uncertainty";
  opts.x_label = "uncertainty u";
  opts.y_label = "energy/op (x nominal)";
  AsciiPlot plot{opts};
  plot.add_series("voltage margin", xs, e_volt, 'v');
  plot.add_series("period margin", xs, e_period, 'p');
  std::printf("\n%s\n", plot.render().c_str());

  // The intro's claim, checked at a feasible operating point (the measured
  // u may exceed what any legal overdrive can buy back — itself a finding).
  const auto volt_20 = power::voltage_margin_strategy(0.2, process);
  rb::shape_check(volt_20.is_ok() &&
                      volt_20.value().energy_factor >
                          power::period_margin_strategy(0.2, process)
                              .energy_factor,
                  "voltage margin buys throughput at a super-linear energy "
                  "price (the paper's intro claim, at u = 20%)");
  if (!voltage_op.is_ok()) {
    std::printf("note: at the measured u = %.1f%% the voltage-margin "
                "strategy is infeasible within Vmax = %.2f Vn — margins "
                "this large can only be paid in period or adaptivity.\n",
                100.0 * u, process.vdd_max);
  }
  rb::shape_check(adaptive_op.throughput_factor >
                          period_op.throughput_factor &&
                      adaptive_op.energy_factor <=
                          period_op.energy_factor + 1e-9,
                  "the adaptive clock dominates the period-margin strategy "
                  "in both axes");
  return 0;
}
