// Ablation A2 — IIR coefficient sets: "a balance between filter adaptation
// velocity and low output ripple" (paper section IV).  We sweep valid
// power-of-two coefficient sets (each satisfying eq. 10) and report
// adaptation speed (settling after a mismatch step) against steady-state
// ripple and the stability-limited CDN delay.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/control/constraints.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace {

struct CoeffSet {
  const char* label;
  std::vector<double> taps;
  double k_star;
};

/// Cycles until |tau - c| stays below 1 stage after a mu step of 8 stages.
std::size_t settling_cycles(const roclk::control::IirConfig& cfg) {
  using namespace roclk;
  core::LoopConfig loop_cfg;
  loop_cfg.setpoint_c = 64.0;
  loop_cfg.cdn_delay_stages = 64.0;
  core::LoopSimulator sim{loop_cfg,
                          std::make_unique<control::IirControlHardware>(cfg)};
  core::SimulationInputs inputs;
  inputs.mu = [](double t) { return t >= 64.0 * 100.0 ? 8.0 : 0.0; };
  const auto trace = sim.run(inputs, 3000);
  const auto err = trace.timing_error(64.0);
  std::size_t settled_at = err.size();
  for (std::size_t n = err.size(); n-- > 100;) {
    if (std::fabs(err[n]) > 1.0) {
      settled_at = n + 1;
      break;
    }
  }
  return settled_at > 100 ? settled_at - 100 : 0;
}

}  // namespace

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A2 — IIR coefficient sets (adaptation velocity vs ripple)",
      "Settling: cycles to re-converge after an 8-stage mismatch step at "
      "t_clk = 1c.\nRipple: steady-state tau peak-to-peak under HoDV "
      "(0.2c, Te = 50c).\nMax M: largest CDN sample delay with a stable "
      "closed loop (Jury/root analysis).");

  const std::vector<CoeffSet> sets{
      {"single tap {1}", {1.0}, 1.0},
      {"two taps {1,1}", {1.0, 1.0}, 0.5},
      {"aggressive {2,1,1}", {2.0, 1.0, 1.0}, 0.25},
      {"paper {2,1,.5,.25,.125,.125}",
       {2.0, 1.0, 0.5, 0.25, 0.125, 0.125},
       0.25},
      {"sluggish {4,2,1,.5,.25,.125,.125}",
       {4.0, 2.0, 1.0, 0.5, 0.25, 0.125, 0.125},
       0.125},
  };

  TextTable table{{"coefficients", "settling (cycles)", "tau ripple",
                   "SM @ Te=50c", "max stable M"}};

  std::size_t paper_settling = 0;
  double paper_ripple = 0.0;
  double single_ripple = 0.0;

  for (const auto& set : sets) {
    control::IirConfig cfg;
    cfg.taps = set.taps;
    cfg.k_star = set.k_star;
    cfg.k_exp = 8.0;
    const auto valid = control::validate_iir_config(cfg);
    if (!valid.is_ok()) {
      std::printf("skipping %s: %s\n", set.label, valid.to_string().c_str());
      continue;
    }

    const std::size_t settling = settling_cycles(cfg);

    core::LoopConfig loop_cfg;
    loop_cfg.setpoint_c = 64.0;
    loop_cfg.cdn_delay_stages = 64.0;
    core::LoopSimulator sim{
        loop_cfg, std::make_unique<control::IirControlHardware>(cfg)};
    const auto trace = sim.run(
        core::SimulationInputs::harmonic(12.8, 50.0 * 64.0), 6000);
    const auto metrics = analysis::evaluate_run(trace, 64.0, 76.8, 1500);

    const auto [n, d] = control::iir_polynomials(cfg);
    const auto max_m = control::max_stable_cdn_delay(n, d, 256);

    table.add_row({set.label, std::to_string(settling),
                   format_double(metrics.tau_ripple, 2),
                   format_double(metrics.safety_margin, 2),
                   max_m ? std::to_string(*max_m) : "none"});

    if (std::string{set.label}.find("paper") != std::string::npos) {
      paper_settling = settling;
      paper_ripple = metrics.tau_ripple;
    }
    if (std::string{set.label}.find("single") != std::string::npos) {
      single_ripple = metrics.tau_ripple;
    }
  }
  table.print(std::cout);
  rb::save_table(table, "ablation_coefficients");

  rb::shape_check(paper_settling < 600,
                  "paper set settles within a few hundred cycles");
  rb::shape_check(paper_ripple <= single_ripple + 1.0,
                  "paper set's ripple no worse than the fastest set");
  return 0;
}
