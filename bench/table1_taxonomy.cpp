// Experiment E6 — paper Table I: sources of variability classified by
// temporal (static/dynamic) and spatial (homogeneous/heterogeneous)
// character.  Every cell's model is instantiated and *measured* on a chip
// grid; the printed classification must land each source in its cell.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "roclk/common/table.hpp"
#include "roclk/variation/sources.hpp"
#include "roclk/variation/variation.hpp"

int main() {
  using namespace roclk;
  using namespace roclk::variation;
  namespace rb = roclk::bench;

  rb::print_header(
      "Table I — sources of variability classified by time and space",
      "Each model is sampled over a 2000-period window on an 8x8 die grid;\n"
      "'measured' columns are the empirical classification thresholds.");

  struct Entry {
    std::unique_ptr<VariationSource> source;
  };
  std::vector<std::unique_ptr<VariationSource>> sources;
  sources.push_back(std::make_unique<DieToDieProcess>(0.05, 1));
  sources.push_back(std::make_unique<VrmRipple>(0.05, 6400.0));
  sources.push_back(std::make_unique<RoomTemperatureDrift>(0.03, 50000.0));
  sources.push_back(
      std::make_unique<OffChipVoltageDrop>(0.2, 30000.0, 20000.0));
  sources.push_back(std::make_unique<WithinDieProcess>(0.04, 2));
  sources.push_back(std::make_unique<RandomDeviceProcess>(0.02, 3));
  sources.push_back(
      std::make_unique<SimultaneousSwitchingNoise>(0.02, 64.0, 4));
  sources.push_back(
      std::make_unique<IrDrop>(0.08, 9000.0, DiePoint{0.8, 0.2}, 5));
  sources.push_back(std::make_unique<TemperatureHotspot>(
      0.08, DiePoint{0.3, 0.7}, 0.2, 10000.0, 30000.0));
  sources.push_back(std::make_unique<Aging>(0.05, 60000.0, 6));

  TextTable table{{"source", "declared (time)", "declared (space)",
                   "measured (time)", "measured (space)",
                   "temporal stddev", "spatial stddev", "match"}};

  ClassificationOptions options;
  options.threshold = 1e-5;

  int matches = 0;
  for (const auto& source : sources) {
    const auto measured = classify(*source, options);
    const bool match = measured.temporal == source->temporal_class() &&
                       measured.spatial == source->spatial_class();
    matches += match;
    table.add_row({source->name(), to_string(source->temporal_class()),
                   to_string(source->spatial_class()),
                   to_string(measured.temporal), to_string(measured.spatial),
                   format_double(measured.temporal_stddev, 5),
                   format_double(measured.spatial_stddev, 5),
                   match ? "yes" : "NO"});
  }
  table.print(std::cout);
  rb::save_table(table, "table1_taxonomy");

  rb::shape_check(matches == static_cast<int>(sources.size()),
                  "every model lands in its declared Table I cell");

  std::printf(
      "\nTable I layout (paper):\n"
      "               | static                  | dynamic\n"
      "  homogeneous  | D2D process             | VRM ripple, room temp,\n"
      "               |                         | off-chip voltage drops\n"
      "  heterogeneous| WID process, RND device | SSN, IR drop, hotspots,\n"
      "               |                         | aging\n");
  return 0;
}
