// S1 — sweep-service soak + dedup gate.
//
// Two phases:
//  * Dedup gate: N identical corner queries fired concurrently at one
//    SweepService must coalesce onto EXACTLY one simulation and every
//    client must receive a bitwise-identical value vector.  The run
//    aborts without recording if either claim fails — the soak numbers
//    are meaningless if the service re-simulates what it should share.
//  * Soak: multi-client request mix over real socketpair transport (one
//    server session thread per client, the daemon's exact frame path):
//    a hot set of repeated scenarios (cache hits) plus per-client cold
//    scenarios (misses).  Records throughput and p50/p95/p99 latency
//    into BENCH_sweeps.json.
//
//  * Fault soak: the same multi-client mix with a deterministic
//    FaultyStream on every client connection (short ops, EINTR storms,
//    connection resets) and ResilientClient retry/reconnect on top.
//    The gate is ZERO lost requests: every query must resolve OK
//    despite the injected failures.  Retry/recovery counters land in
//    BENCH_sweeps.json.
//
// Usage: run from the repository root; argv[1] overrides the output
// path; --smoke shrinks the client count and workload for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "roclk/service/client.hpp"
#include "roclk/service/fault_injector.hpp"
#include "roclk/service/retry.hpp"
#include "roclk/service/server.hpp"
#include "roclk/service/session.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace roclk;
using namespace roclk::service;

Request corner_request(double tclk_over_c, double te_over_c) {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.tclk_over_c = tclk_over_c;
  request.corner.te_over_c = te_over_c;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

/// Fires `clients` identical queries concurrently; true iff the service
/// ran exactly one simulation and every response matched bitwise.
bool dedup_gate(std::size_t clients) {
  SweepService service{{}};
  const Request request = corner_request(1.25, 30.0);

  std::vector<Response> responses(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      threads.emplace_back([&service, &request, &responses, i] {
        responses[i] = service.handle(request);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const ServiceStats stats = service.stats();
  bool ok = stats.simulations == 1;
  if (!ok) {
    std::fprintf(stderr, "expected 1 simulation, ran %llu\n",
                 static_cast<unsigned long long>(stats.simulations));
  }
  for (const Response& r : responses) {
    if (!r.ok() || r.values != responses.front().values) {
      std::fprintf(stderr, "response mismatch (status %s)\n",
                   to_string(r.status));
      ok = false;
    }
  }
  std::printf("[dedup] %zu concurrent identical queries -> %llu "
              "simulation(s), %llu coalesced, %llu cache hit(s)\n",
              clients, static_cast<unsigned long long>(stats.simulations),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.cache_hits));
  return ok;
}

struct SoakResult {
  double seconds{0.0};
  std::size_t requests{0};
  double p50_us{0.0};
  double p95_us{0.0};
  double p99_us{0.0};
  bool ok{true};
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_us.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac;
}

/// Multi-client soak over socketpair transport: every client interleaves
/// queries from a shared hot set with its own cold scenarios.
SoakResult run_soak(std::size_t clients, std::size_t requests_per_client,
                    std::size_t hot_scenarios) {
  SweepService service{{}};

  std::vector<FdStream> client_ends(clients);
  std::vector<std::thread> servers;
  servers.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    FdStream server_end;
    if (const Status status = make_stream_pair(client_ends[i], server_end);
        !status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      return {.ok = false};
    }
    servers.emplace_back([&service, fd = server_end.release()] {
      FdStream owned{fd};
      (void)run_server_session(owned.fd(), service);
    });
  }

  std::vector<std::vector<double>> latencies_us(clients);
  std::vector<bool> worker_ok(clients, true);
  const auto start = Clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        Client client{std::move(client_ends[i])};
        latencies_us[i].reserve(requests_per_client);
        for (std::size_t r = 0; r < requests_per_client; ++r) {
          // 3 of 4 requests hit the shared hot set; the rest are unique
          // to this client (guaranteed cold on first sight).
          const bool hot = r % 4 != 3;
          const Request request =
              hot ? corner_request(
                        1.0 + 0.05 * static_cast<double>(r % hot_scenarios),
                        25.0)
                  : corner_request(
                        2.0 + 0.01 * static_cast<double>(i * 1024 + r),
                        25.0);
          const auto t0 = Clock::now();
          const Result<Response> response = client.query(request);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count();
          if (!response.is_ok() || !response.value().ok()) {
            worker_ok[i] = false;
            return;
          }
          latencies_us[i].push_back(us);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (std::thread& t : servers) t.join();  // clients closed -> sessions end

  SoakResult result;
  result.seconds = seconds;
  std::vector<double> all_us;
  for (std::size_t i = 0; i < clients; ++i) {
    result.ok = result.ok && worker_ok[i];
    all_us.insert(all_us.end(), latencies_us[i].begin(),
                  latencies_us[i].end());
  }
  std::sort(all_us.begin(), all_us.end());
  result.requests = all_us.size();
  result.p50_us = percentile(all_us, 0.50);
  result.p95_us = percentile(all_us, 0.95);
  result.p99_us = percentile(all_us, 0.99);
  return result;
}

struct FaultSoakResult {
  double seconds{0.0};
  std::size_t requests{0};
  std::size_t lost{0};  // queries that did not resolve OK — the gate
  RetryStats retry;     // summed across all clients
  bool ok{true};
};

/// The soak mix again, but every client connection is wrapped in a
/// deterministic FaultyStream (short ops, EINTR storms, and a byte
/// budget after which the connection resets) with a ResilientClient
/// dialing fresh connections on top.  Backoff is scheduled through a
/// no-op sleep hook so the phase measures recovery work, not waiting.
FaultSoakResult run_fault_soak(std::size_t clients,
                               std::size_t requests_per_client,
                               std::size_t hot_scenarios) {
  SweepService service{{}};

  std::vector<RetryStats> retry_stats(clients);
  std::vector<std::size_t> lost(clients, 0);
  const auto start = Clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        std::vector<std::thread> sessions;
        std::uint64_t dials = 0;
        ResilientClientConfig config;
        config.retry.max_attempts = 8;
        // The gate is total delivery, so local shedding is disabled;
        // the breaker is exercised by its own unit tests.
        config.breaker.failure_threshold = 0;
        config.jitter_key = StreamKey{20260809}.at(i);
        config.sleep_ms = [](std::uint32_t) {};
        config.connect = [&service, &sessions, &dials,
                          i]() -> Result<Client> {
          FdStream client_end, server_end;
          if (Status status = make_stream_pair(client_end, server_end);
              !status.is_ok()) {
            return status;
          }
          sessions.emplace_back([&service, fd = server_end.release()] {
            FdStream owned{fd};
            (void)run_server_session(owned.fd(), service);
          });
          TransportFaultConfig faults;
          faults.short_op_rate = 0.3;
          faults.eintr_rate = 0.2;
          // Every connection dies after ~a few round trips, usually
          // mid-flight — each dial replays its own schedule from the
          // (client, dial) key, so a failing run replays bit-for-bit.
          faults.reset_after_bytes = 4096;
          return Client{make_faulty_stream(std::move(client_end),
                                           StreamKey{0xFA17}.at(i).at(dials++),
                                           faults)};
        };
        {
          ResilientClient client{config};
          for (std::size_t r = 0; r < requests_per_client; ++r) {
            const bool hot = r % 4 != 3;
            const Request request =
                hot ? corner_request(
                          1.0 + 0.05 * static_cast<double>(r % hot_scenarios),
                          25.0)
                    : corner_request(
                          3.0 + 0.01 * static_cast<double>(i * 1024 + r),
                          25.0);
            const Result<Response> response = client.query(request);
            if (!response.is_ok() || !response.value().ok()) ++lost[i];
          }
          retry_stats[i] = client.stats();
        }  // client destroyed -> last connection closes -> sessions end
        for (std::thread& t : sessions) t.join();
      });
    }
    for (std::thread& t : workers) t.join();
  }

  FaultSoakResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.requests = clients * requests_per_client;
  for (std::size_t i = 0; i < clients; ++i) {
    result.lost += lost[i];
    result.retry.queries += retry_stats[i].queries;
    result.retry.attempts += retry_stats[i].attempts;
    result.retry.retries += retry_stats[i].retries;
    result.retry.reconnects += retry_stats[i].reconnects;
    result.retry.transport_errors += retry_stats[i].transport_errors;
    result.retry.retryable_statuses += retry_stats[i].retryable_statuses;
    result.retry.backoff_ms_total += retry_stats[i].backoff_ms_total;
    result.retry.exhausted += retry_stats[i].exhausted;
  }
  result.ok = result.lost == 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweeps.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::size_t dedup_clients = smoke ? 8 : 16;
  const std::size_t soak_clients = smoke ? 4 : 8;
  const std::size_t requests_per_client = smoke ? 24 : 200;
  const std::size_t hot_scenarios = 4;

  roclk::bench::print_header(
      "S1 — sweep-service soak",
      "request coalescing gate + multi-client latency/throughput soak");

  const bool dedup_ok = dedup_gate(dedup_clients);
  roclk::bench::shape_check(
      dedup_ok, "N identical concurrent queries ran exactly one simulation "
                "and every client saw bitwise-identical values");
  if (!dedup_ok) return 1;

  const SoakResult soak =
      run_soak(soak_clients, requests_per_client, hot_scenarios);
  if (!soak.ok) {
    std::fprintf(stderr, "soak phase failed\n");
    return 1;
  }
  const double throughput =
      static_cast<double>(soak.requests) / soak.seconds;
  std::printf("[soak] %zu clients x %zu requests: %.2f req/s, "
              "p50=%.0fus p95=%.0fus p99=%.0fus\n",
              soak_clients, requests_per_client, throughput, soak.p50_us,
              soak.p95_us, soak.p99_us);

  const FaultSoakResult faulted =
      run_fault_soak(soak_clients, requests_per_client, hot_scenarios);
  roclk::bench::shape_check(
      faulted.ok, "fault-injected soak delivered every request (0 lost) "
                  "through retry/reconnect");
  if (!faulted.ok) {
    std::fprintf(stderr, "fault soak lost %zu of %zu requests\n",
                 faulted.lost, faulted.requests);
    return 1;
  }
  std::printf(
      "[fault-soak] %zu requests, 0 lost: %llu attempts, %llu retries, "
      "%llu reconnects, %llu transport errors, %llu ms backoff scheduled\n",
      faulted.requests,
      static_cast<unsigned long long>(faulted.retry.attempts),
      static_cast<unsigned long long>(faulted.retry.retries),
      static_cast<unsigned long long>(faulted.retry.reconnects),
      static_cast<unsigned long long>(faulted.retry.transport_errors),
      static_cast<unsigned long long>(faulted.retry.backoff_ms_total));

  const int hw_threads =
      static_cast<int>(roclk::ThreadPool::shared().size()) + 1;
  const std::string suffix = smoke ? "_smoke" : "";
  std::vector<roclk::bench::PerfEntry> entries;
  roclk::bench::PerfEntry entry;
  entry.name = "service_soak" + suffix;
  entry.unit = "requests";
  // before = single-client sequential baseline, after = the soak itself.
  const SoakResult baseline = run_soak(1, requests_per_client, hot_scenarios);
  if (!baseline.ok) {
    std::fprintf(stderr, "baseline phase failed\n");
    return 1;
  }
  entry.before_items_per_sec =
      static_cast<double>(baseline.requests) / baseline.seconds;
  entry.after_items_per_sec = throughput;
  entry.threads = static_cast<int>(soak_clients);
  entry.simd_backend = "scalar";
  entry.p50_us = soak.p50_us;
  entry.p95_us = soak.p95_us;
  entry.p99_us = soak.p99_us;
  entries.push_back(entry);

  roclk::bench::PerfEntry fault_entry;
  fault_entry.name = "service_fault_soak" + suffix;
  fault_entry.unit = "requests";
  // before = the healthy soak, after = the same mix under injected
  // transport faults with retry/reconnect recovering every request.
  fault_entry.before_items_per_sec = throughput;
  fault_entry.after_items_per_sec =
      static_cast<double>(faulted.requests) / faulted.seconds;
  fault_entry.threads = static_cast<int>(soak_clients);
  fault_entry.simd_backend = "scalar";
  entries.push_back(fault_entry);

  char fault_notes[256];
  std::snprintf(fault_notes, sizeof fault_notes,
                " fault-soak recovery counters: lost=%zu attempts=%llu "
                "retries=%llu reconnects=%llu transport_errors=%llu "
                "backoff_ms=%llu.",
                faulted.lost,
                static_cast<unsigned long long>(faulted.retry.attempts),
                static_cast<unsigned long long>(faulted.retry.retries),
                static_cast<unsigned long long>(faulted.retry.reconnects),
                static_cast<unsigned long long>(faulted.retry.transport_errors),
                static_cast<unsigned long long>(faulted.retry.backoff_ms_total));

  std::string notes =
      "Sweep-service soak over socketpair transport, fresh service per "
      "phase, 3:1 hot(shared)/cold(per-client) scenario mix. before: 1 "
      "sequential client; after: N concurrent clients (threads = N), with "
      "request latency percentiles. On a 1-core host the concurrent run "
      "is expected to be slower per request (client+session thread "
      "oversubscription); the entry records contention honestly, not a "
      "speedup.";
  notes += fault_notes;
  if (smoke) notes = "(smoke) " + notes;
  if (!roclk::bench::append_perf_run(out_path, "service_soak_runner", notes,
                                     entries)) {
    std::fprintf(stderr, "failed to append perf run to %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("[json] appended run to %s\n", out_path.c_str());
  return 0;
}
