// Ablation A5 — discrete sample-domain model (paper Fig. 4 / our
// LoopSimulator) vs the continuous event-driven edge simulator.  The paper
// evaluates everything on the discrete model; this bench quantifies what
// that abstraction costs across perturbation frequencies.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/edge_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A5 — discrete (Fig. 4) model vs continuous edge simulation",
      "IIR RO, amplitude 0.2c, t_clk = 1c.  The discrete model linearises "
      "the RO/TDC and\nquantises the CDN to M[n] samples; the edge "
      "simulator does neither.");

  TextTable table{{"Te/c", "SM discrete", "SM edge", "mean T discrete",
                   "mean T edge", "rel.period discrete", "rel.period edge"}};

  const double c = 64.0;
  double worst_rel_gap = 0.0;
  for (double te_over_c : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    const std::size_t cycles =
        2000 + static_cast<std::size_t>(12.0 * te_over_c);
    const std::size_t skip = 1000 + static_cast<std::size_t>(3.0 * te_over_c);
    const double fixed = analysis::fixed_clock_period(c, 0.2 * c);

    auto discrete = core::make_iir_system(c, c);
    const auto d_trace = discrete.run(
        core::SimulationInputs::harmonic(0.2 * c, te_over_c * c), cycles);
    const auto d_metrics = analysis::evaluate_run(d_trace, c, fixed, skip);

    core::EdgeSimConfig edge_cfg;
    edge_cfg.setpoint_c = c;
    edge_cfg.cdn_delay_stages = c;
    core::EdgeSimulator edge{edge_cfg,
                             std::make_unique<control::IirControlHardware>()};
    const auto e_trace = edge.run(
        core::EdgeSimInputs::homogeneous(
            std::make_shared<signal::SineWaveform>(0.2, te_over_c * c)),
        cycles);
    const auto e_metrics = analysis::evaluate_run(e_trace, c, fixed, skip);

    table.add_row_values({te_over_c, d_metrics.safety_margin,
                          e_metrics.safety_margin, d_metrics.mean_period,
                          e_metrics.mean_period,
                          d_metrics.relative_adaptive_period,
                          e_metrics.relative_adaptive_period});
    worst_rel_gap =
        std::max(worst_rel_gap,
                 std::fabs(d_metrics.relative_adaptive_period -
                           e_metrics.relative_adaptive_period));
  }
  table.print(std::cout);
  rb::save_table(table, "ablation_edge_model");

  std::printf("\nworst relative-period gap between models: %.4f\n",
              worst_rel_gap);
  rb::shape_check(worst_rel_gap < 0.05,
                  "discrete Fig. 4 abstraction tracks the event-driven "
                  "model within a few percent");
  return 0;
}
