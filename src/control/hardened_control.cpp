#include "roclk/control/hardened_control.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "roclk/common/check.hpp"

namespace roclk::control {

Status validate_hardened_config(const HardenedConfig& config) {
  if (!std::isfinite(config.setpoint_c)) {
    return Status::invalid_argument("setpoint_c must be finite");
  }
  if (!(config.safe_lro > 0.0) || !std::isfinite(config.safe_lro)) {
    std::ostringstream os;
    os << "safe_lro must be positive and finite, got " << config.safe_lro;
    return Status::invalid_argument(os.str());
  }
  if (auto status = SensorGuard::validate(config.guard); !status.is_ok()) {
    return status;
  }
  return Watchdog::validate(config.watchdog);
}

HardenedControl::HardenedControl(std::unique_ptr<ControlBlock> inner,
                                 HardenedConfig config)
    : config_{config},
      inner_{std::move(inner)},
      guard_{config.guard},
      watchdog_{config.watchdog} {
  ROCLK_CHECK(inner_ != nullptr, "HardenedControl needs an inner block");
  ROCLK_CHECK_OK(validate_hardened_config(config_));
  guard_.reset(config_.setpoint_c);
}

HardenedControl::HardenedControl(const HardenedControl& other)
    : config_{other.config_},
      inner_{other.inner_->clone()},
      guard_{other.guard_},
      watchdog_{other.watchdog_},
      locked_command_{other.locked_command_},
      floor_clamped_{other.floor_clamped_} {}

double HardenedControl::step(double delta) {
  const WatchdogState prior = watchdog_.state();
  // The guard reasons about the physical reading, so reconstruct tau from
  // the loop's delta = c - tau.  While not locked the guard is bypassed:
  // re-acquisition legitimately sweeps tau across the guard's reject range
  // and only the raw stream can prove the fault has cleared.
  const double tau = config_.setpoint_c - delta;
  const double tau_used =
      prior == WatchdogState::kLocked ? guard_.filter(tau) : tau;
  const double delta_used = config_.setpoint_c - tau_used;

  const WatchdogState state = watchdog_.observe(delta_used);
  if (state == WatchdogState::kDegraded) {
    if (prior != WatchdogState::kDegraded) {
      // Graceful degradation snap: park the inner state at the safe
      // command so nothing winds up during the hold window.
      inner_->reset(config_.safe_lro);
      if (prior == WatchdogState::kReacquiring && floor_clamped_) {
        // A re-acquisition that failed while PINNED AT THE FLOOR indicts
        // the floor itself: the operating point it remembers is stale
        // (a long fault let the loop lock onto a corrupted reading, or
        // the environment moved).  Release it so the next descent can
        // reach the true equilibrium.  A stall away from the floor — a
        // still-active fault blocking the descent — keeps it.
        locked_command_ = 0.0;
      }
      floor_clamped_ = false;
    }
    return config_.safe_lro;
  }
  if (prior == WatchdogState::kReacquiring &&
      state == WatchdogState::kLocked) {
    // Relock edge: hold-last-good restarts from the true operating point.
    guard_.reset(tau_used);
  }
  double command = inner_->step(delta_used);
  if (state == WatchdogState::kReacquiring) {
    floor_clamped_ = command < locked_command_;
    if (floor_clamped_) {
      // Bumpless re-acquisition floor: the descent from the safe park is
      // a large-signal transient, so the integrator accumulates downward
      // momentum and would undershoot the operating point — a timing
      // violation by construction (l_RO below the last command known to
      // meet timing).  Clamp at that command and back-calculate the
      // inner state onto the floor, the same anti-windup philosophy the
      // IIR applies at the l_RO range clamps.
      inner_->reset(locked_command_);
      command = locked_command_;
    }
  }
  if (state == WatchdogState::kLocked) {
    locked_command_ = command;
  }
  return command;
}

void HardenedControl::reset(double initial_output) {
  inner_->reset(initial_output);
  watchdog_.reset();
  guard_.reset(config_.setpoint_c);
  locked_command_ = initial_output;
  floor_clamped_ = false;
}

std::unique_ptr<ControlBlock> HardenedControl::clone() const {
  return std::make_unique<HardenedControl>(*this);
}

std::unique_ptr<HardenedControl> make_hardened_iir(IirConfig iir,
                                                   HardenedConfig config,
                                                   double min_length,
                                                   double max_length) {
  ROCLK_CHECK(min_length <= max_length,
              "l_RO clamp range is empty in make_hardened_iir");
  iir.anti_windup = IirOutputClamp{min_length, max_length};
  return std::make_unique<HardenedControl>(
      std::make_unique<IirControlHardware>(std::move(iir)), config);
}

}  // namespace roclk::control
