#include "roclk/control/sensor_guard.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "roclk/common/check.hpp"

namespace roclk::control {

Status SensorGuard::validate(const SensorGuardConfig& config) {
  if (!(config.tau_min <= config.tau_max)) {
    std::ostringstream os;
    os << "guard range is empty: [" << config.tau_min << ", "
       << config.tau_max << "]";
    return Status::invalid_argument(os.str());
  }
  if (config.max_step < 0.0) {
    return Status::invalid_argument("max_step cannot be negative");
  }
  if (config.median_window > 1 && config.median_window % 2 == 0) {
    std::ostringstream os;
    os << "median window must be odd (a unique median), got "
       << config.median_window;
    return Status::invalid_argument(os.str());
  }
  return Status::ok();
}

SensorGuard::SensorGuard(SensorGuardConfig config) : config_{config} {
  ROCLK_CHECK_OK(validate(config_));
  if (config_.median_window > 1) {
    window_.assign(config_.median_window, 0.0);
    scratch_.resize(config_.median_window);
  }
}

void SensorGuard::reset(double initial_tau) {
  last_good_ = initial_tau;
  holds_ = 0;
  std::fill(window_.begin(), window_.end(), initial_tau);
  window_head_ = 0;
}

double SensorGuard::debounced(double raw_tau) {
  if (window_.empty()) return raw_tau;
  window_[window_head_] = raw_tau;
  window_head_ = (window_head_ + 1) % window_.size();
  scratch_ = window_;
  auto mid = scratch_.begin() +
             static_cast<std::ptrdiff_t>(scratch_.size() / 2);
  std::nth_element(scratch_.begin(), mid, scratch_.end());
  return *mid;
}

double SensorGuard::filter(double raw_tau) {
  // A NaN reading is permanently implausible: it must not enter the median
  // window (NaN breaks nth_element's ordering) and resyncing to it would
  // poison last_good_ forever, so it is held without ever being accepted.
  const bool is_nan = std::isnan(raw_tau);
  const double candidate = is_nan ? raw_tau : debounced(raw_tau);

  const bool in_range = !is_nan && candidate >= config_.tau_min &&
                        candidate <= config_.tau_max;
  const bool rate_ok =
      !is_nan && (config_.max_step == 0.0 ||
                  std::fabs(candidate - last_good_) <= config_.max_step);

  if (in_range && rate_ok) {
    last_good_ = candidate;
    holds_ = 0;
    return candidate;
  }

  if (!is_nan && holds_ >= config_.hold_limit) {
    // Holds exhausted: a genuine operating-point shift would otherwise be
    // masked forever.  Accept the raw stream and let the watchdog decide.
    ++stats_.resyncs;
    last_good_ = candidate;
    holds_ = 0;
    return candidate;
  }

  if (!in_range) {
    ++stats_.range_rejects;
  } else {
    ++stats_.rate_rejects;
  }
  ++holds_;
  return last_good_;
}

}  // namespace roclk::control
