#include "roclk/control/calibration.hpp"

#include <algorithm>
#include <cmath>

namespace roclk::control {

Result<CalibrationResult> calibrate_setpoint(const SetpointProbe& probe,
                                             const CalibrationConfig& config) {
  if (!probe) return Status::invalid_argument("null probe");
  if (config.min_setpoint <= 0.0 ||
      config.max_setpoint <= config.min_setpoint) {
    return Status::invalid_argument("invalid set-point bracket");
  }
  if (config.probe_cycles == 0) {
    return Status::invalid_argument("probe needs at least one cycle");
  }
  if (config.resolution <= 0.0) {
    return Status::invalid_argument("resolution must be positive");
  }

  CalibrationResult result;
  auto errors_at = [&](double c) {
    ++result.probes;
    result.total_cycles += config.settle_cycles + config.probe_cycles;
    return probe(c, config.settle_cycles, config.probe_cycles);
  };

  // The search needs a safe upper end to shrink from.
  double hi = config.max_setpoint;
  if (errors_at(hi) > 0) {
    return Status::out_of_range(
        "even the maximum set-point shows timing errors");
  }
  double lo = config.min_setpoint;
  if (errors_at(lo) == 0) {
    // Already safe at the bottom of the bracket.
    result.minimum_safe = lo;
    result.setpoint = lo + config.guard_band;
    return result;
  }

  while (hi - lo > config.resolution) {
    const double mid = 0.5 * (lo + hi);
    if (errors_at(mid) == 0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.minimum_safe = hi;
  result.setpoint = hi + config.guard_band;
  return result;
}

}  // namespace roclk::control
