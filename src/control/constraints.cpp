#include "roclk/control/constraints.hpp"

#include <cmath>

#include "roclk/signal/roots.hpp"

namespace roclk::control {

ConstraintReport check_paper_constraints(const signal::Polynomial& numerator,
                                         const signal::Polynomial& denominator,
                                         double tol) {
  ConstraintReport report;
  report.n_at_one = numerator.at_one();
  report.d_at_one = denominator.at_one();
  report.numerator_ok = std::fabs(report.n_at_one) > tol;
  report.denominator_ok = std::fabs(report.d_at_one) <= tol;
  return report;
}

std::vector<double> closed_loop_characteristic(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    std::size_t cdn_delay_m) {
  signal::Polynomial characteristic =
      denominator + numerator.delayed(cdn_delay_m + 2);
  characteristic.trim();
  return characteristic.ascending_in_z();
}

Result<ClosedLoopStability> closed_loop_stability(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    std::size_t cdn_delay_m) {
  const auto characteristic =
      closed_loop_characteristic(numerator, denominator, cdn_delay_m);
  auto roots = signal::find_roots(characteristic);
  if (!roots.is_ok()) return roots.status();
  ClosedLoopStability out;
  out.spectral_radius = signal::spectral_radius(roots.value());
  // Strict stability; a tiny tolerance absorbs root-finder noise.
  out.stable = out.spectral_radius < 1.0 - 1e-9;
  return out;
}

std::optional<std::size_t> max_stable_cdn_delay(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    std::size_t max_m) {
  std::optional<std::size_t> best;
  for (std::size_t m = 0; m <= max_m; ++m) {
    auto stab = closed_loop_stability(numerator, denominator, m);
    if (!stab.is_ok()) break;
    if (stab.value().stable) {
      best = m;
    } else if (best.has_value()) {
      // Stability region for these loops is contiguous from M = 0.
      break;
    }
  }
  return best;
}

}  // namespace roclk::control
