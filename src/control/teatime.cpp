#include "roclk/control/teatime.hpp"

#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"

namespace roclk::control {

TeaTimeControl::TeaTimeControl(TeaTimeConfig config) : config_{config} {
  ROCLK_CHECK(config.step_stages > 0.0, "TEAtime step must be positive");
}

double TeaTimeControl::step(double delta) {
  const double driving = config_.delayed_sign ? prev_delta_ : delta;
  int direction = signum(driving);
  if (direction == 0 && config_.zero_policy == SignZeroPolicy::kDither) {
    direction = 1;
  }
  accumulator_ += config_.step_stages * direction;
  prev_delta_ = delta;
  return accumulator_;
}

void TeaTimeControl::reset(double initial_output) {
  accumulator_ = initial_output;
  prev_delta_ = 0.0;
}

std::unique_ptr<ControlBlock> TeaTimeControl::clone() const {
  return std::make_unique<TeaTimeControl>(*this);
}

}  // namespace roclk::control
