#include "roclk/control/iir_control.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "roclk/common/math.hpp"
#include "roclk/control/constraints.hpp"
#include "roclk/signal/jury.hpp"

namespace roclk::control {

IirConfig paper_iir_config() { return IirConfig{}; }

Status validate_iir_config(const IirConfig& config) {
  if (config.taps.empty()) {
    return Status::invalid_argument("IIR needs at least one tap");
  }
  for (double k : config.taps) {
    if (auto gain = PowerOfTwoGain::from_value(k); !gain.is_ok()) {
      std::ostringstream os;
      os << "tap " << k << ": " << gain.status().message();
      return Status::invalid_argument(os.str());
    }
  }
  if (auto gain = PowerOfTwoGain::from_value(config.k_exp); !gain.is_ok()) {
    return Status::invalid_argument("k_exp must be a power of two");
  }
  if (config.k_exp < 1.0) {
    return Status::invalid_argument("k_exp must be >= 1");
  }
  if (auto gain = PowerOfTwoGain::from_value(config.k_star); !gain.is_ok()) {
    return Status::invalid_argument("k* must be a power of two");
  }
  if (config.anti_windup.has_value()) {
    const IirOutputClamp& clamp = *config.anti_windup;
    if (!std::isfinite(clamp.min_output) ||
        !std::isfinite(clamp.max_output)) {
      return Status::invalid_argument("anti-windup bounds must be finite");
    }
    if (clamp.min_output > clamp.max_output) {
      std::ostringstream os;
      os << "anti-windup range is empty: [" << clamp.min_output << ", "
         << clamp.max_output << "]";
      return Status::invalid_argument(os.str());
    }
  }
  const double tap_sum =
      std::accumulate(config.taps.begin(), config.taps.end(), 0.0);
  if (tap_sum <= 0.0) {
    return Status::invalid_argument("tap sum must be positive");
  }
  // eq. 10: k* = 1 / sum(k_i).
  if (std::fabs(config.k_star * tap_sum - 1.0) > 1e-12) {
    std::ostringstream os;
    os << "eq. 10 violated: k* = " << config.k_star << " but 1/sum(k) = "
       << 1.0 / tap_sum;
    return Status::invalid_argument(os.str());
  }
  // Paper eq. 8 on H_IIR itself: the loop is type-1 only if N(1) != 0 and
  // D(1) = 0 (the integrator pole sits exactly at z = 1).  eq. 10 implies
  // this, but we enforce it on the actual polynomials so a construction
  // with a violated design constraint cannot slip through rounding.
  const auto [num, den] = iir_polynomials(config);
  const ConstraintReport report = check_paper_constraints(num, den);
  if (!report.satisfied()) {
    std::ostringstream os;
    os << "eq. 8 violated: N(1) = " << report.n_at_one
       << " (must be != 0), D(1) = " << report.d_at_one << " (must be 0)";
    return Status::invalid_argument(os.str());
  }
  // Jury test on the remaining dynamics: after dividing out the designed
  // integrator pole at z = 1, every other pole of D(z) must lie strictly
  // inside the unit circle or the filter is internally unstable and no
  // closed loop can rescue it.
  const auto jury = signal::jury_test_without_unit_root(den.ascending_in_z());
  if (!jury.is_ok()) {
    return Status::invalid_argument("Jury test failed: " +
                                    jury.status().message());
  }
  if (!jury.value().stable) {
    return Status::invalid_argument(
        "IIR filter is Jury-unstable after removing the z = 1 integrator "
        "pole: " +
        jury.value().failed_condition);
  }
  return Status::ok();
}

IirPolynomials iir_polynomials(const IirConfig& config) {
  // N(z) = z^-1 ; D(z) = 1/k* - sum_i k_i z^-i.
  std::vector<double> d(config.taps.size() + 1, 0.0);
  d[0] = 1.0 / config.k_star;
  for (std::size_t i = 0; i < config.taps.size(); ++i) {
    d[i + 1] = -config.taps[i];
  }
  return {signal::Polynomial::delay(1), signal::Polynomial{std::move(d)}};
}

signal::TransferFunction iir_transfer_function(const IirConfig& config) {
  auto [num, den] = iir_polynomials(config);
  return {std::move(num), std::move(den)};
}

// ------------------------------------------------- IirControlReference

IirControlReference::IirControlReference(IirConfig config)
    : config_{std::move(config)} {
  ROCLK_CHECK_OK(validate_iir_config(config_));
  outputs_.assign(config_.taps.size(), 0.0);
}

double IirControlReference::step(double delta) {
  // y[n] = k* ( x[n-1] + sum_i k_i y[n-i] )
  double feedback = 0.0;
  for (std::size_t i = 0; i < config_.taps.size(); ++i) {
    feedback += config_.taps[i] * outputs_[i];
  }
  const double y = config_.k_star * (prev_input_ + feedback);
  // Shift output history: outputs_[0] = y[n-1] for the next call.
  for (std::size_t i = outputs_.size(); i-- > 1;) {
    outputs_[i] = outputs_[i - 1];
  }
  outputs_[0] = y;
  if (config_.anti_windup.has_value()) {
    // Same back-calculation as the hardware datapath: bound only the
    // stored state, never the returned command.
    outputs_[0] = std::clamp(y, config_.anti_windup->min_output,
                             config_.anti_windup->max_output);
  }
  prev_input_ = delta;
  return y;
}

void IirControlReference::reset(double initial_output) {
  outputs_.assign(config_.taps.size(), initial_output);
  prev_input_ = 0.0;
}

std::unique_ptr<ControlBlock> IirControlReference::clone() const {
  return std::make_unique<IirControlReference>(*this);
}

// -------------------------------------------------- IirControlHardware

IirControlHardware::IirControlHardware(IirConfig config)
    : config_{std::move(config)} {
  ROCLK_CHECK_OK(validate_iir_config(config_));
  k_exp_gain_ = PowerOfTwoGain::from_value(config_.k_exp).value();
  k_star_gain_ = PowerOfTwoGain::from_value(config_.k_star).value();
  tap_gains_.reserve(config_.taps.size());
  for (double k : config_.taps) {
    tap_gains_.push_back(PowerOfTwoGain::from_value(k).value());
  }
  if (config_.anti_windup.has_value()) {
    aw_enabled_ = true;
    aw_min_ = static_cast<std::int64_t>(
        llround_ties_away(config_.anti_windup->min_output));
    aw_max_ = static_cast<std::int64_t>(
        llround_ties_away(config_.anti_windup->max_output));
  }
  state_.assign(config_.taps.size(), 0);
}

void IirControlHardware::reset(double initial_output) {
  const auto w0 = static_cast<std::int64_t>(
      llround_ties_away(initial_output * config_.k_exp));
  state_.assign(config_.taps.size(), w0);
  prev_input_ = 0;
}

std::unique_ptr<ControlBlock> IirControlHardware::clone() const {
  return std::make_unique<IirControlHardware>(*this);
}

}  // namespace roclk::control
