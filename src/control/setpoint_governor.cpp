#include "roclk/control/setpoint_governor.hpp"

#include <algorithm>
#include <limits>

namespace roclk::control {

Status SetpointGovernor::validate(const GovernorConfig& config) {
  if (config.logic_depth <= 0.0) {
    return Status::invalid_argument("logic depth must be positive");
  }
  if (config.min_setpoint <= 0.0 ||
      config.max_setpoint < config.min_setpoint) {
    return Status::invalid_argument("invalid set-point range");
  }
  if (config.initial_setpoint < config.min_setpoint ||
      config.initial_setpoint > config.max_setpoint) {
    return Status::invalid_argument("initial set-point outside range");
  }
  if (config.window == 0) {
    return Status::invalid_argument("window must be at least one cycle");
  }
  if (config.step_up <= 0.0 || config.step_down <= 0.0) {
    return Status::invalid_argument("steps must be positive");
  }
  if (config.headroom < 0.0) {
    return Status::invalid_argument("headroom cannot be negative");
  }
  return Status::ok();
}

SetpointGovernor::SetpointGovernor(GovernorConfig config)
    : config_{config}, setpoint_{config.initial_setpoint} {
  ROCLK_CHECK_OK(validate(config_));
  worst_tau_in_window_ = std::numeric_limits<double>::infinity();
}

double SetpointGovernor::observe(double tau) {
  ++cycles_in_window_;
  worst_tau_in_window_ = std::min(worst_tau_in_window_, tau);
  if (tau < config_.logic_depth) {
    ++errors_in_window_;
    ++total_errors_;
  }

  if (cycles_in_window_ >= config_.window) {
    ++epochs_;
    if (errors_in_window_ > 0) {
      setpoint_ += config_.step_up;
    } else if (worst_tau_in_window_ - config_.logic_depth >=
               config_.headroom + config_.step_down) {
      setpoint_ -= config_.step_down;
    }
    setpoint_ =
        std::clamp(setpoint_, config_.min_setpoint, config_.max_setpoint);
    cycles_in_window_ = 0;
    errors_in_window_ = 0;
    worst_tau_in_window_ = std::numeric_limits<double>::infinity();
  }
  return setpoint_;
}

void SetpointGovernor::reset() {
  setpoint_ = config_.initial_setpoint;
  cycles_in_window_ = 0;
  errors_in_window_ = 0;
  worst_tau_in_window_ = std::numeric_limits<double>::infinity();
  epochs_ = 0;
  total_errors_ = 0;
}

}  // namespace roclk::control
