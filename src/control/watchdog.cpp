#include "roclk/control/watchdog.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "roclk/common/check.hpp"

namespace roclk::control {

Status Watchdog::validate(const WatchdogConfig& config) {
  if (!(config.delta_bound > 0.0) || !std::isfinite(config.delta_bound)) {
    std::ostringstream os;
    os << "delta_bound must be positive and finite, got "
       << config.delta_bound;
    return Status::invalid_argument(os.str());
  }
  if (!(config.relock_bound > 0.0) ||
      !std::isfinite(config.relock_bound)) {
    return Status::invalid_argument("relock_bound must be positive");
  }
  if (config.relock_bound > config.delta_bound) {
    std::ostringstream os;
    os << "relock_bound (" << config.relock_bound
       << ") must not exceed delta_bound (" << config.delta_bound
       << "): the loop would declare lock while already tripping";
    return Status::invalid_argument(os.str());
  }
  if (config.trip_cycles < 1 || config.relock_cycles < 1 ||
      config.stall_cycles < 1) {
    return Status::invalid_argument(
        "trip_cycles, relock_cycles and stall_cycles must be >= 1");
  }
  if (config.reacquire_timeout <= config.relock_cycles) {
    return Status::invalid_argument(
        "reacquire_timeout must exceed relock_cycles: the watchdog would "
        "bounce back to degraded before a relock streak could complete");
  }
  return Status::ok();
}

Watchdog::Watchdog(WatchdogConfig config) : config_{config} {
  ROCLK_CHECK_OK(validate(config_));
}

void Watchdog::reset() {
  state_ = WatchdogState::kLocked;
  out_of_bound_ = 0;
  in_bound_ = 0;
  stalled_ = 0;
  last_magnitude_ = std::numeric_limits<double>::infinity();
  in_state_ = 0;
  since_degrade_ = 0;
}

void Watchdog::enter(WatchdogState next) {
  state_ = next;
  in_state_ = 0;
  out_of_bound_ = 0;
  in_bound_ = 0;
  stalled_ = 0;
  last_magnitude_ = std::numeric_limits<double>::infinity();
}

WatchdogState Watchdog::observe(double delta) {
  // NaN compares false with everything: treat it as out of bound (a NaN
  // error can only come from a faulted path and must not stall the trip
  // counter).
  const double magnitude = std::fabs(delta);
  const bool out = !(magnitude <= config_.delta_bound);
  const bool in = magnitude <= config_.relock_bound;

  ++since_degrade_;
  switch (state_) {
    case WatchdogState::kLocked:
      out_of_bound_ = out ? out_of_bound_ + 1 : 0;
      if (out_of_bound_ >= config_.trip_cycles) {
        ++trips_;
        since_degrade_ = 0;
        enter(WatchdogState::kDegraded);
        in_state_ = 1;  // the trip cycle is the first held cycle
        return state_;
      }
      break;
    case WatchdogState::kDegraded:
      if (in_state_ + 1 >= config_.hold_cycles) {
        enter(WatchdogState::kReacquiring);
        return state_;
      }
      break;
    case WatchdogState::kReacquiring:
      in_bound_ = in ? in_bound_ + 1 : 0;
      if (in_bound_ >= config_.relock_cycles) {
        last_relock_latency_ = since_degrade_;
        enter(WatchdogState::kLocked);
        return state_;
      }
      // Re-acquisition starts legitimately far out of bound (the descent
      // from the safe park), so only a STALLED descent — |delta| failing
      // to shrink, NaN included via the negated compare — re-trips.
      if (out) {
        stalled_ = !(magnitude < last_magnitude_) ? stalled_ + 1 : 0;
      } else {
        stalled_ = 0;
      }
      last_magnitude_ = magnitude;
      if (stalled_ >= config_.stall_cycles ||
          in_state_ + 1 >= config_.reacquire_timeout) {
        ++trips_;
        since_degrade_ = 0;
        enter(WatchdogState::kDegraded);
        in_state_ = 1;  // the re-trip cycle is the first held cycle
        return state_;
      }
      break;
  }
  ++in_state_;
  return state_;
}

}  // namespace roclk::control
