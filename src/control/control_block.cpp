#include "roclk/control/control_block.hpp"

#include "roclk/common/status.hpp"

namespace roclk::control {

ProportionalControl::ProportionalControl(double kp) : kp_{kp} {
  ROCLK_CHECK(kp > 0.0, "proportional gain must be positive");
}

double ProportionalControl::step(double delta) {
  const double out = bias_ + kp_ * prev_delta_;
  prev_delta_ = delta;
  return out;
}

void ProportionalControl::reset(double initial_output) {
  bias_ = initial_output;
  prev_delta_ = 0.0;
}

std::unique_ptr<ControlBlock> ProportionalControl::clone() const {
  return std::make_unique<ProportionalControl>(*this);
}

PiControl::PiControl(double kp, double ki) : kp_{kp}, ki_{ki} {
  ROCLK_CHECK(kp >= 0.0, "proportional gain cannot be negative");
  ROCLK_CHECK(ki > 0.0, "integral gain must be positive");
}

double PiControl::step(double delta) {
  integral_ += prev_delta_;
  const double out = bias_ + kp_ * prev_delta_ + ki_ * integral_;
  prev_delta_ = delta;
  return out;
}

void PiControl::reset(double initial_output) {
  bias_ = initial_output;
  integral_ = 0.0;
  prev_delta_ = 0.0;
}

std::unique_ptr<ControlBlock> PiControl::clone() const {
  return std::make_unique<PiControl>(*this);
}

}  // namespace roclk::control
