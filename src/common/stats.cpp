#include "roclk/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/common/status.hpp"

namespace roclk {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge of Welford accumulators.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.min();
}

double max_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.max();
}

double percentile(std::span<const double> xs, double p) {
  ROCLK_CHECK(!xs.empty(), "percentile of empty span");
  ROCLK_CHECK(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double peak_to_peak(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return max_of(xs) - min_of(xs);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  ROCLK_CHECK(hi > lo, "histogram range must be non-empty");
  ROCLK_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge guard
  ++counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

}  // namespace roclk
