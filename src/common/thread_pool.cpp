#include "roclk/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "roclk/common/status.hpp"

namespace roclk {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  ROCLK_CHECK(task != nullptr, "null task submitted");
  {
    std::lock_guard lock(mutex_);
    ROCLK_CHECK(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {

/// Per-call scheduling state, heap-held so range tasks that drain after the
/// caller has already returned (every index claimed by other threads) touch
/// only memory they co-own.
struct ForState {
  std::atomic<std::size_t> next{0};  // first unclaimed index
  std::atomic<std::size_t> done{0};  // indices fully executed
  std::size_t n{0};
  std::size_t chunk{1};
  const std::function<void(std::size_t)>* fn{nullptr};
  std::mutex m;
  std::condition_variable cv;
};

/// Claims and executes ranges until the index space is exhausted; returns
/// the number of indices this thread completed.  `fn` is only dereferenced
/// while at least one index is still owed, which the caller outlives.
std::size_t drain(ForState& s) {
  std::size_t completed = 0;
  for (;;) {
    const std::size_t begin = s.next.fetch_add(s.chunk,
                                               std::memory_order_relaxed);
    if (begin >= s.n) break;
    const std::size_t end = std::min(s.n, begin + s.chunk);
    for (std::size_t i = begin; i < end; ++i) (*s.fn)(i);
    completed += end - begin;
  }
  return completed;
}

void finish(ForState& s, std::size_t completed) {
  if (completed == 0) return;
  if (s.done.fetch_add(completed, std::memory_order_acq_rel) + completed ==
      s.n) {
    std::lock_guard lock(s.m);  // pairs with the caller's predicate check
    s.cv.notify_all();
  }
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  if (n == 1 || workers <= 1) {
    // One worker gains nothing over the caller running the loop directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  // ~4 ranges per thread balances load without per-index queue churn.
  state->chunk = std::max<std::size_t>(1, n / ((workers + 1) * 4));

  const std::size_t helpers =
      std::min(workers, (n + state->chunk - 1) / state->chunk);
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.submit([state] { finish(*state, drain(*state)); });
  }

  // The caller claims ranges too: progress is guaranteed even if every
  // worker is blocked inside an outer parallel_for (nested use).
  const std::size_t mine = drain(*state);
  finish(*state, mine);
  std::unique_lock lock(state->m);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(ThreadPool::shared(), n, fn);
}

}  // namespace roclk
