#include "roclk/common/thread_pool.hpp"

#include <atomic>

#include "roclk/common/status.hpp"

namespace roclk {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ROCLK_REQUIRE(task != nullptr, "null task submitted");
  {
    std::lock_guard lock(mutex_);
    ROCLK_REQUIRE(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so tiny tasks do not thrash the queue.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, &next, n] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for_index(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  parallel_for_index(pool, n, fn);
}

}  // namespace roclk
