#include "roclk/common/sharded_mc.hpp"

#include <algorithm>

#include "roclk/common/status.hpp"

namespace roclk::mc {

std::vector<ShardRange> shard_ranges(std::size_t items, std::size_t shards) {
  ROCLK_CHECK(shards >= 1, "need at least one shard");
  std::vector<ShardRange> ranges;
  if (items == 0) return ranges;
  shards = std::min(shards, items);
  ranges.reserve(shards);
  // First (items % shards) shards carry one extra item; boundaries are a
  // pure function of (items, shards).
  const std::size_t base = items / shards;
  const std::size_t extra = items % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

void keyed_for(std::size_t items, StreamKey key, ThreadPool* pool,
               const std::function<void(std::size_t, StreamKey)>& fn) {
  if (items == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < items; ++i) fn(i, key.at(i));
    return;
  }
  parallel_for(*pool, items, [&](std::size_t i) { fn(i, key.at(i)); });
}

std::vector<double> keyed_map(
    std::size_t items, StreamKey key, ThreadPool* pool,
    const std::function<double(std::size_t, StreamKey)>& fn) {
  std::vector<double> out(items);
  keyed_for(items, key, pool,
            [&](std::size_t i, StreamKey item_key) {
              out[i] = fn(i, item_key);
            });
  return out;
}

}  // namespace roclk::mc
