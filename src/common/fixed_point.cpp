#include "roclk/common/fixed_point.hpp"

#include <cmath>
#include <sstream>

#include "roclk/common/math.hpp"

namespace roclk {

Result<PowerOfTwoGain> PowerOfTwoGain::from_value(double v) {
  if (v == 0.0 || !std::isfinite(v)) {
    return Status::invalid_argument("power-of-two gain must be finite, non-zero");
  }
  const bool negative = v < 0.0;
  const double mag = std::fabs(v);
  const double exponent = std::log2(mag);
  const double rounded = round_ties_away(exponent);
  if (std::fabs(exponent - rounded) > 1e-12) {
    std::ostringstream os;
    os << "gain " << v << " is not a power of two";
    return Status::invalid_argument(os.str());
  }
  return PowerOfTwoGain{static_cast<int>(rounded), negative};
}

}  // namespace roclk
