#include "roclk/common/simd.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace roclk::simd {

namespace {

/// Programmatic override (tests/benches).  kUnset sentinel keeps the
/// atomic lock-free; reads happen on every EnsembleSimulator::run call.
constexpr int kUnset = -1;
std::atomic<int> g_override{kUnset};

void warn_once(const std::string& message) {
  static std::once_flag flag;
  std::call_once(flag, [&message] {
    std::fprintf(stderr, "roclk: %s\n", message.c_str());
  });
}

/// ROCLK_SIMD environment request, parsed once per process.
/// 0 = no request (unset / "native" / "auto"), else 1 + Backend value.
int env_request() {
  static const int request = [] {
    // Backend selection only — never feeds simulation results, so the
    // deterministic-output contract holds for every ROCLK_SIMD value.
    const char* raw = std::getenv("ROCLK_SIMD");  // roclk-lint: allow(env-source)
    if (raw == nullptr || raw[0] == '\0') return 0;
    std::string name{raw};
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    if (name == "native" || name == "auto") return 0;
    const auto parsed = parse_backend(name);
    if (!parsed.has_value()) {
      warn_once("ROCLK_SIMD=" + std::string{raw} +
                " is not a backend (scalar | avx2 | neon | native); using "
                "the native backend");
      return 0;
    }
    return 1 + static_cast<int>(*parsed);
  }();
  return request;
}

/// Degrades an unusable backend request to kScalar with one warning.
Backend usable_or_scalar(Backend requested, const char* origin) {
  if (!backend_compiled(requested)) {
    warn_once(std::string{origin} + " requested SIMD backend '" +
              to_string(requested) +
              "' but it is not compiled into this binary; falling back to "
              "scalar");
    return Backend::kScalar;
  }
  if (!backend_cpu_supported(requested)) {
    warn_once(std::string{origin} + " requested SIMD backend '" +
              to_string(requested) +
              "' but this CPU does not support it; falling back to scalar");
    return Backend::kScalar;
  }
  return requested;
}

}  // namespace

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "neon") return Backend::kNeon;
  return std::nullopt;
}

bool backend_compiled(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#ifdef ROCLK_SIMD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Backend::kNeon:
#ifdef ROCLK_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool backend_cpu_supported(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is architecturally mandatory on AArch64
#else
      return false;
#endif
  }
  return false;
}

Backend native_backend() {
  static const Backend native = [] {
    for (Backend candidate : {Backend::kAvx2, Backend::kNeon}) {
      if (backend_compiled(candidate) && backend_cpu_supported(candidate)) {
        return candidate;
      }
    }
    return Backend::kScalar;
  }();
  return native;
}

Backend active_backend() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced != kUnset) {
    return usable_or_scalar(static_cast<Backend>(forced),
                            "set_backend_override");
  }
  const int request = env_request();
  if (request != 0) {
    return usable_or_scalar(static_cast<Backend>(request - 1), "ROCLK_SIMD");
  }
  return native_backend();
}

void set_backend_override(std::optional<Backend> backend) {
  g_override.store(backend.has_value() ? static_cast<int>(*backend) : kUnset,
                   std::memory_order_relaxed);
}

std::optional<Backend> backend_override() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced == kUnset) return std::nullopt;
  return static_cast<Backend>(forced);
}

}  // namespace roclk::simd
