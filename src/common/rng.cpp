#include "roclk/common/rng.hpp"

#include <cmath>

#include "roclk/common/status.hpp"

namespace roclk {

double Xoshiro256::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Marsaglia polar method: rejection-sample a point in the unit disc.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

double Xoshiro256::exponential(double lambda) {
  ROCLK_CHECK(lambda > 0.0, "exponential rate must be positive");
  // Inverse CDF on (0,1]; 1-uniform() avoids log(0).
  return -std::log(1.0 - uniform()) / lambda;
}

}  // namespace roclk
