#include "roclk/common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "roclk/common/status.hpp"

namespace roclk {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {
  ROCLK_CHECK(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  ROCLK_CHECK(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

TextTable& TextTable::add_row_values(const std::vector<double>& values,
                                     int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  return add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << row[c] << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

void TextTable::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool TextTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace roclk
