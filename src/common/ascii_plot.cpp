#include "roclk/common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"

namespace roclk {

AsciiPlot::AsciiPlot(PlotOptions options) : options_{options} {
  ROCLK_CHECK(options_.width >= 10 && options_.height >= 4,
                "plot area too small");
}

AsciiPlot& AsciiPlot::add_series(PlotSeries series) {
  ROCLK_CHECK(series.x.size() == series.y.size(),
                "series x/y length mismatch");
  series_.push_back(std::move(series));
  return *this;
}

AsciiPlot& AsciiPlot::add_series(std::string name, std::span<const double> x,
                                 std::span<const double> y, char glyph) {
  PlotSeries s;
  s.name = std::move(name);
  s.x.assign(x.begin(), x.end());
  s.y.assign(y.begin(), y.end());
  s.glyph = glyph;
  return add_series(std::move(s));
}

std::string AsciiPlot::render() const {
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -y_lo;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options_.log_x && s.x[i] <= 0.0) continue;
      x_lo = std::min(x_lo, s.x[i]);
      x_hi = std::max(x_hi, s.x[i]);
      y_lo = std::min(y_lo, s.y[i]);
      y_hi = std::max(y_hi, s.y[i]);
    }
  }
  if (!(x_lo < x_hi)) {
    x_hi = x_lo + 1.0;
  }
  if (options_.y_lo < options_.y_hi) {
    y_lo = options_.y_lo;
    y_hi = options_.y_hi;
  } else if (!(y_lo < y_hi)) {
    y_hi = y_lo + 1.0;
  }
  // Pad the y range slightly so extreme points stay inside the frame.
  const double y_pad = 0.03 * (y_hi - y_lo);
  y_lo -= y_pad;
  y_hi += y_pad;

  const int w = options_.width;
  const int h = options_.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  auto x_to_col = [&](double x) -> int {
    double t = 0.0;
    if (options_.log_x) {
      if (x <= 0.0) return -1;
      t = (std::log10(x) - std::log10(x_lo)) /
          (std::log10(x_hi) - std::log10(x_lo));
    } else {
      t = (x - x_lo) / (x_hi - x_lo);
    }
    const int col = static_cast<int>(llround_ties_away(t * (w - 1)));
    return (col < 0 || col >= w) ? -1 : col;
  };
  auto y_to_row = [&](double y) -> int {
    const double t = (y - y_lo) / (y_hi - y_lo);
    const int row = static_cast<int>(llround_ties_away((1.0 - t) * (h - 1)));
    return (row < 0 || row >= h) ? -1 : row;
  };

  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = x_to_col(s.x[i]);
      const int row = y_to_row(s.y[i]);
      if (col < 0 || row < 0) continue;
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.glyph;
    }
  }

  std::ostringstream os;
  if (!options_.title.empty()) os << options_.title << '\n';
  if (!options_.y_label.empty()) os << "y: " << options_.y_label << '\n';

  auto label = [](double v) {
    std::ostringstream ls;
    ls << std::setw(10) << std::setprecision(4) << std::defaultfloat << v;
    return ls.str();
  };

  for (int r = 0; r < h; ++r) {
    // y-axis tick label on first, middle and last rows.
    std::string tick(10, ' ');
    if (r == 0) tick = label(y_hi);
    if (r == h / 2) tick = label((y_lo + y_hi) / 2.0);
    if (r == h - 1) tick = label(y_lo);
    os << tick << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(10, ' ') << " +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  os << std::string(10, ' ') << "  " << label(x_lo)
     << std::setw(std::max(4, w - 20)) << ' ' << label(x_hi) << '\n';
  if (!options_.x_label.empty()) {
    os << std::string(12, ' ') << "x: " << options_.x_label
       << (options_.log_x ? "  (log scale)" : "") << '\n';
  }
  os << "legend:";
  for (const auto& s : series_) os << "  '" << s.glyph << "' " << s.name;
  os << '\n';
  return os.str();
}

std::string sparkline(std::span<const double> ys, int width) {
  if (ys.empty() || width <= 0) return {};
  static constexpr const char* kLevels[] = {"▁", "▂", "▃",
                                            "▄", "▅", "▆",
                                            "▇", "█"};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double y : ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  if (!(lo < hi)) hi = lo + 1.0;

  std::string out;
  const std::size_t n = ys.size();
  const auto cols = static_cast<std::size_t>(width);
  for (std::size_t cidx = 0; cidx < std::min(cols, n); ++cidx) {
    // Average the bucket of samples mapped onto this column.
    const std::size_t begin = cidx * n / std::min(cols, n);
    const std::size_t end = std::max(begin + 1, (cidx + 1) * n / std::min(cols, n));
    double acc = 0.0;
    for (std::size_t i = begin; i < end && i < n; ++i) acc += ys[i];
    const double v = acc / static_cast<double>(end - begin);
    auto level = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
    level = std::clamp(level, 0, 7);
    out += kLevels[level];
  }
  return out;
}

}  // namespace roclk
