#include "roclk/common/flags.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace roclk {

FlagParser::FlagParser(std::string program_description)
    : description_{std::move(program_description)} {}

FlagParser& FlagParser::add_string(const std::string& name,
                                   std::string default_value,
                                   std::string help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.default_text = default_value;
  flag.string_value = std::move(default_value);
  flags_[name] = std::move(flag);
  return *this;
}

FlagParser& FlagParser::add_double(const std::string& name,
                                   double default_value, std::string help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  std::ostringstream os;
  os << default_value;
  flag.default_text = os.str();
  flags_[name] = std::move(flag);
  return *this;
}

FlagParser& FlagParser::add_int(const std::string& name,
                                std::int64_t default_value,
                                std::string help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flag.default_text = std::to_string(default_value);
  flags_[name] = std::move(flag);
  return *this;
}

FlagParser& FlagParser::add_bool(const std::string& name, bool default_value,
                                 std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flag.default_text = default_value ? "true" : "false";
  flags_[name] = std::move(flag);
  return *this;
}

Status FlagParser::set_value(Flag& flag, const std::string& name,
                             const std::string& text) {
  switch (flag.type) {
    case Type::kString:
      flag.string_value = text;
      return Status::ok();
    case Type::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::invalid_argument("--" + name + ": '" + text +
                                        "' is not a number");
      }
      flag.double_value = v;
      return Status::ok();
    }
    case Type::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::invalid_argument("--" + name + ": '" + text +
                                        "' is not an integer");
      }
      flag.int_value = v;
      return Status::ok();
    }
    case Type::kBool: {
      if (text == "true" || text == "1" || text == "yes") {
        flag.bool_value = true;
        return Status::ok();
      }
      if (text == "false" || text == "0" || text == "no") {
        flag.bool_value = false;
        return Status::ok();
      }
      return Status::invalid_argument("--" + name + ": '" + text +
                                      "' is not a boolean");
    }
  }
  return Status::internal("unknown flag type");
}

Status FlagParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

Status FlagParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (name == "help") {
      help_requested_ = true;
      continue;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::not_found("unknown flag --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        // Bare boolean flag sets true.
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= args.size()) {
        return Status::invalid_argument("--" + name + " expects a value");
      }
      value = args[++i];
    }
    if (Status s = set_value(flag, name, value); !s.is_ok()) return s;
  }
  return Status::ok();
}

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Status FlagParser::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::not_found("cannot open config file: " + path);
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::invalid_argument(path + ":" + std::to_string(line_no) +
                                      ": expected 'name = value'");
    }
    const std::string name = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::not_found(path + ":" + std::to_string(line_no) +
                               ": unknown option '" + name + "'");
    }
    if (Status s = set_value(it->second, name, value); !s.is_ok()) return s;
  }
  return Status::ok();
}

std::string FlagParser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  (default: " << flag.default_text << ")\n"
       << "      " << flag.help << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

const FlagParser::Flag& FlagParser::require(const std::string& name,
                                            Type type) const {
  const auto it = flags_.find(name);
  ROCLK_CHECK(it != flags_.end(), "flag not registered: " + name);
  ROCLK_CHECK(it->second.type == type, "flag type mismatch: " + name);
  return it->second;
}

std::string FlagParser::get_string(const std::string& name) const {
  return require(name, Type::kString).string_value;
}

double FlagParser::get_double(const std::string& name) const {
  return require(name, Type::kDouble).double_value;
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  return require(name, Type::kInt).int_value;
}

bool FlagParser::get_bool(const std::string& name) const {
  return require(name, Type::kBool).bool_value;
}

}  // namespace roclk
