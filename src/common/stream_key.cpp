#include "roclk/common/stream_key.hpp"

#include <cmath>
#include <numbers>

#include "roclk/common/status.hpp"

namespace roclk {

double CounterRng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller: a fixed two-draw transform (unlike Marsaglia's polar
  // method there is no rejection loop, so every normal pair advances the
  // counter by exactly 2 — the draw-stability the sharded Monte-Carlo
  // contract requires).  1 - uniform() keeps the log argument in (0, 1].
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double CounterRng::exponential(double lambda) {
  ROCLK_CHECK(lambda > 0.0, "exponential rate must be positive");
  // Inverse CDF on (0,1]; 1-uniform() avoids log(0).
  return -std::log(1.0 - uniform()) / lambda;
}

}  // namespace roclk
