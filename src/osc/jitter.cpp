#include "roclk/osc/jitter.hpp"

#include "roclk/common/status.hpp"

namespace roclk::osc {

JitterModel::JitterModel(JitterConfig config)
    : config_{config}, rng_{config.seed} {
  ROCLK_CHECK(config_.white_sigma >= 0.0, "white sigma cannot be negative");
  ROCLK_CHECK(config_.walk_sigma >= 0.0, "walk sigma cannot be negative");
  ROCLK_CHECK(config_.walk_leak >= 0.0 && config_.walk_leak <= 1.0,
                "walk leak must be in [0, 1]");
}

double JitterModel::sample() {
  double value = 0.0;
  if (config_.white_sigma > 0.0) {
    value += rng_.normal(0.0, config_.white_sigma);
  }
  if (config_.walk_sigma > 0.0) {
    walk_ = config_.walk_leak * walk_ + rng_.normal(0.0, config_.walk_sigma);
    value += walk_;
  }
  return value;
}

void JitterModel::reset() {
  // The jitter random walk genuinely accumulates state draw after draw, so
  // a sequential generator is the right tool here — not a counter stream.
  rng_ = Xoshiro256{config_.seed};  // roclk-lint: allow(xoshiro)
  walk_ = 0.0;
}

}  // namespace roclk::osc
