#include "roclk/osc/ring_oscillator.hpp"

#include <algorithm>
#include <sstream>

namespace roclk::osc {

Status RingOscillator::validate(const RingOscillatorConfig& config) {
  if (config.min_length < 1) {
    return Status::invalid_argument("min_length must be >= 1");
  }
  if (config.max_length < config.min_length) {
    return Status::invalid_argument("max_length must be >= min_length");
  }
  if (config.initial_length < config.min_length ||
      config.initial_length > config.max_length) {
    std::ostringstream os;
    os << "initial_length " << config.initial_length << " outside ["
       << config.min_length << ", " << config.max_length << "]";
    return Status::invalid_argument(os.str());
  }
  if (config.stage_delay_seconds <= 0.0) {
    return Status::invalid_argument("stage delay must be positive");
  }
  return Status::ok();
}

RingOscillator::RingOscillator(RingOscillatorConfig config)
    : config_{config}, length_{config.initial_length} {
  ROCLK_CHECK_OK(validate(config_));
}

FixedClockSource::FixedClockSource(double period_stages)
    : period_stages_{period_stages} {
  ROCLK_CHECK(period_stages > 0.0,
              "fixed period must be positive, got " << period_stages
                                                    << " stages");
}

}  // namespace roclk::osc
