#include "roclk/osc/stage_chain.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::osc {

Status StageChain::validate(const StageChainConfig& config) {
  if (config.stages < 3) {
    return Status::invalid_argument("chain needs at least 3 stages");
  }
  if (config.nominal_stage_delay <= 0.0) {
    return Status::invalid_argument("stage delay must be positive");
  }
  return Status::ok();
}

StageChain::StageChain(StageChainConfig config) : config_{config} {
  ROCLK_CHECK_OK(validate(config_));
  positions_.reserve(config_.stages);
  const double n = static_cast<double>(config_.stages - 1);
  for (std::size_t i = 0; i < config_.stages; ++i) {
    const double t = n > 0.0 ? static_cast<double>(i) / n : 0.0;
    positions_.push_back({lerp(config_.start.x, config_.end.x, t),
                          lerp(config_.start.y, config_.end.y, t)});
  }
}

variation::DiePoint StageChain::position(std::size_t i) const {
  ROCLK_CHECK(i < positions_.size(), "stage index out of range");
  return positions_[i];
}

double StageChain::stage_delay(std::size_t i,
                               const variation::VariationSource& source,
                               double t) const {
  ROCLK_CHECK(i < positions_.size(), "stage index out of range");
  const double v = source.at(t, positions_[i]);
  const double d = config_.nominal_stage_delay * (1.0 + v);
  ROCLK_CHECK(d > 0.0, "variation drove a stage delay non-positive");
  return d;
}

double StageChain::chain_delay(std::size_t count,
                               const variation::VariationSource& source,
                               double t) const {
  ROCLK_CHECK(count <= positions_.size(), "count exceeds chain length");
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += stage_delay(i, source, t);
  }
  return acc;
}

std::size_t StageChain::stages_crossed(
    double window, const variation::VariationSource& source, double t) const {
  ROCLK_CHECK(window >= 0.0, "window cannot be negative");
  double acc = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    acc += stage_delay(i, source, t);
    if (acc > window) return i;  // stage i not fully crossed
  }
  return positions_.size();
}

std::int64_t nearest_odd(std::int64_t value) {
  if (value % 2 != 0) return value;
  // Even: round up (the safer direction — a longer ring is slower).
  return value + 1;
}

TappedRingOscillator::TappedRingOscillator(StageChainConfig chain,
                                           std::int64_t min_length,
                                           std::int64_t max_length)
    : chain_{chain},
      min_length_{nearest_odd(std::max<std::int64_t>(3, min_length))},
      max_length_{max_length % 2 == 0 ? max_length - 1 : max_length},
      length_{min_length_} {
  ROCLK_CHECK(max_length_ >= min_length_, "empty tap range");
  ROCLK_CHECK(static_cast<std::size_t>(max_length_) <= chain_.size(),
                "tap range exceeds physical chain");
  // Start mid-range.
  length_ = nearest_odd(min_length_ + (max_length_ - min_length_) / 2);
  length_ = std::clamp(length_, min_length_, max_length_);
}

std::int64_t TappedRingOscillator::set_length(std::int64_t requested) {
  std::int64_t odd = nearest_odd(requested);
  odd = std::clamp(odd, min_length_, max_length_);
  length_ = odd;
  return length_;
}

double TappedRingOscillator::period_stages(
    const variation::VariationSource& source, double t) const {
  return chain_.chain_delay(static_cast<std::size_t>(length_), source, t);
}

}  // namespace roclk::osc
