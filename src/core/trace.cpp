#include "roclk/core/trace.hpp"

#include <algorithm>
#include <fstream>

#include "roclk/common/stats.hpp"

namespace roclk::core {

void SimulationTrace::reserve(std::size_t n) {
  tau_.reserve(n);
  delta_.reserve(n);
  lro_.reserve(n);
  t_gen_.reserve(n);
  t_dlv_.reserve(n);
  violation_.reserve(n);
}

std::vector<double> SimulationTrace::timing_error(double setpoint) const {
  std::vector<double> out;
  out.reserve(tau_.size());
  for (double t : tau_) out.push_back(t - setpoint);
  return out;
}

std::size_t SimulationTrace::violation_count(std::size_t skip) const {
  std::size_t count = 0;
  for (std::size_t i = skip; i < violation_.size(); ++i) {
    count += violation_[i];
  }
  return count;
}

double SimulationTrace::required_safety_margin(double setpoint,
                                               std::size_t skip) const {
  double worst = 0.0;
  for (std::size_t i = skip; i < tau_.size(); ++i) {
    worst = std::max(worst, setpoint - tau_[i]);
  }
  return worst;
}

double SimulationTrace::mean_delivered_period(std::size_t skip) const {
  if (skip >= t_dlv_.size()) return 0.0;
  RunningStats stats;
  for (std::size_t i = skip; i < t_dlv_.size(); ++i) stats.add(t_dlv_[i]);
  return stats.mean();
}

double SimulationTrace::tau_ripple(std::size_t skip) const {
  if (skip >= tau_.size()) return 0.0;
  RunningStats stats;
  for (std::size_t i = skip; i < tau_.size(); ++i) stats.add(tau_[i]);
  return stats.range();
}

bool SimulationTrace::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "n,tau,delta,lro,t_gen,t_dlv,violation\n";
  for (std::size_t i = 0; i < size(); ++i) {
    out << i << ',' << tau_[i] << ',' << delta_[i] << ',' << lro_[i] << ','
        << t_gen_[i] << ',' << t_dlv_[i] << ','
        << static_cast<int>(violation_[i]) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace roclk::core
