#include "roclk/core/edge_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "roclk/common/math.hpp"

namespace roclk::core {

EdgeSimInputs EdgeSimInputs::homogeneous(
    std::shared_ptr<const signal::Waveform> waveform) {
  ROCLK_CHECK(waveform != nullptr, "null waveform");
  EdgeSimInputs inputs;
  inputs.v_ro = [waveform](double t) { return waveform->at(t); };
  inputs.v_tdc = [waveform](double t) { return waveform->at(t); };
  return inputs;
}

EdgeSimulator::EdgeSimulator(EdgeSimConfig config,
                             std::unique_ptr<control::ControlBlock> controller)
    : config_{config}, controller_{std::move(controller)} {
  ROCLK_CHECK(config_.setpoint_c > 0.0, "set-point must be positive");
  ROCLK_CHECK(config_.cdn_delay_stages >= 0.0, "negative CDN delay");
  ROCLK_CHECK(
      config_.mode != GeneratorMode::kControlledRo || controller_ != nullptr,
      "controlled mode requires a controller");
  ROCLK_CHECK(config_.tdc_relative_mismatch > -1.0,
                "mismatch must keep stage delay positive");
}

SimulationTrace EdgeSimulator::run(const EdgeSimInputs& inputs,
                                   std::size_t n_delivered) {
  const double c = config_.setpoint_c;
  const double t_clk = config_.cdn_delay_stages;
  const double equilibrium = config_.mode == GeneratorMode::kControlledRo
                                 ? c
                                 : config_.open_loop_period.value_or(c);
  if (controller_) controller_->reset(equilibrium);

  double lro = equilibrium;  // length currently in force at the RO
  double g = 0.0;            // time of the last generation edge
  // Delivered-edge times not yet consumed by the measurement process.  The
  // clock ran at the equilibrium period before t = 0, so the edge
  // preceding the first simulated one was delivered one period earlier.
  std::deque<double> delivered;
  delivered.push_back(t_clk - equilibrium);
  delivered.push_back(t_clk);

  // Generated periods paired with each delivered period (for the trace).
  std::deque<double> generated_periods;
  generated_periods.push_back(equilibrium);  // the seeded pre-t=0 period

  SimulationTrace trace;
  trace.reserve(n_delivered);

  const double mismatch_scale = 1.0 + config_.tdc_relative_mismatch;

  while (trace.size() < n_delivered) {
    // Process every delivered period that completed before the next
    // generation instant: its measurement can influence lro from then on.
    while (delivered.size() >= 2 && delivered[1] <= g &&
           trace.size() < n_delivered) {
      const double d_prev = delivered[0];
      const double d_now = delivered[1];
      delivered.pop_front();
      const double period_dlv = d_now - d_prev;
      const double v = inputs.v_tdc(d_now);
      const double stage_scale = (1.0 + v) * mismatch_scale;
      ROCLK_CHECK(stage_scale > 0.0, "variation drove stage delay negative");
      const double tau = round_ties_away(period_dlv / stage_scale);

      StepRecord record;
      record.tau = tau;
      record.delta = c - tau;
      record.violation = tau < c;
      record.t_dlv = period_dlv;
      record.t_gen = generated_periods.front();
      generated_periods.pop_front();

      if (config_.mode == GeneratorMode::kControlledRo) {
        const double commanded = controller_->step(record.delta);
        lro = std::clamp(round_ties_away(commanded),
                         static_cast<double>(config_.min_length),
                         static_cast<double>(config_.max_length));
      }
      record.lro = lro;
      trace.push(record);
    }
    if (trace.size() >= n_delivered) break;

    // Generate the next period.
    double period = 0.0;
    switch (config_.mode) {
      case GeneratorMode::kControlledRo:
      case GeneratorMode::kFreeRunningRo:
        period = lro * (1.0 + inputs.v_ro(g));
        break;
      case GeneratorMode::kFixedClock:
        period = config_.open_loop_period.value_or(c);
        break;
    }
    ROCLK_CHECK(period > 0.0, "non-positive generated period");
    g += period;
    delivered.push_back(g + t_clk);
    generated_periods.push_back(period);
  }
  return trace;
}

}  // namespace roclk::core
