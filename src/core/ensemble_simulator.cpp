#include "roclk/core/ensemble_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "ensemble_simd_kernel.hpp"
#include "roclk/common/math.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/iir_control.hpp"

namespace roclk::core {

namespace {

/// Largest static magnitude (set-point, TDC range, length bound) for which
/// every int64<->double conversion in the vector kernel is provably exact:
/// with inputs bounded by 2^49, |delta| <= 2^50 stays inside the vector
/// backends' exact conversion window (|x| < 2^51, see simd::to_int_exact).
/// Configs beyond this keep the scalar reference kernel.
constexpr double kSimdMaxMagnitude = 0x1p49;

}  // namespace

// ------------------------------------------------------- TraceReducer

TraceReducer::TraceReducer(std::size_t lanes, std::size_t reserve_cycles)
    : traces_(lanes) {
  if (reserve_cycles > 0) {
    for (SimulationTrace& trace : traces_) trace.reserve(reserve_cycles);
  }
}

void TraceReducer::accumulate(const LaneSlice& slice) {
  ROCLK_CHECK(slice.first_lane + slice.width <= traces_.size(),
                "lane slice out of range");
  for (std::size_t w = 0; w < slice.width; ++w) {
    StepRecord record;
    record.tau = slice.tau[w];
    record.delta = slice.delta[w];
    record.lro = slice.lro[w];
    record.t_gen = slice.t_gen[w];
    record.t_dlv = slice.t_dlv[w];
    record.violation = slice.violation[w] != 0;
    traces_[slice.first_lane + w].push(record);
  }
}

const SimulationTrace& TraceReducer::trace(std::size_t lane) const {
  return traces_.at(lane);
}

std::vector<SimulationTrace> TraceReducer::take() {
  return std::move(traces_);
}

// -------------------------------------------------- EnsembleSimulator

Status EnsembleSimulator::validate(std::span<const LoopConfig> lane_configs,
                                   std::size_t controller_count) {
  if (lane_configs.empty()) {
    return Status::invalid_argument("ensemble needs at least one lane");
  }
  const LoopConfig& head = lane_configs.front();
  if (head.mode == GeneratorMode::kControlledRo) {
    if (controller_count != lane_configs.size()) {
      return Status::invalid_argument(
          "controlled ensemble needs one controller per lane");
    }
  } else if (controller_count != 0) {
    return Status::invalid_argument(
        "open-loop ensemble must not have controllers");
  }
  for (const LoopConfig& config : lane_configs) {
    if (config.mode != head.mode) {
      return Status::invalid_argument("lanes disagree on generator mode");
    }
    if (config.quantize_lro != head.quantize_lro) {
      return Status::invalid_argument(
          "lanes disagree on l_RO quantisation");
    }
    if (config.tdc_quantization != head.tdc_quantization) {
      return Status::invalid_argument(
          "lanes disagree on TDC quantisation");
    }
    if (config.cdn_quantization != head.cdn_quantization) {
      return Status::invalid_argument(
          "lanes disagree on CDN quantisation");
    }
    if (config.tdc_max_reading != head.tdc_max_reading) {
      // The kernel shares one Tdc across all lanes; a silently ignored
      // per-lane chain length would defeat the max_reading >= c contract.
      return Status::invalid_argument(
          "lanes disagree on TDC max_reading");
    }
    const Status status = LoopSimulator::validate(
        config, head.mode == GeneratorMode::kControlledRo);
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

EnsembleSimulator::EnsembleSimulator(
    std::vector<LoopConfig> lane_configs,
    std::vector<std::unique_ptr<control::ControlBlock>> controllers)
    : configs_{std::move(lane_configs)},
      controllers_{std::move(controllers)} {
  ROCLK_CHECK_OK(validate(configs_, controllers_.size()));
  for (const auto& controller : controllers_) {
    ROCLK_CHECK(controller != nullptr, "null controller");
  }

  mode_ = configs_.front().mode;
  quantize_lro_ = configs_.front().quantize_lro;
  cdn_quantization_ = configs_.front().cdn_quantization;
  tdc_ = sensor::Tdc{detail::tdc_config_for(configs_.front())};

  // Devirtualise the IIR hardware once per ensemble, the lane-parallel
  // analogue of run_batch's dynamic_cast hoist: when every lane runs an
  // IirControlHardware with one shared configuration, its power-of-two
  // gains are cached here and the per-lane integer state lives in the
  // chunk-strided bank instead of the virtual controllers.
  if (mode_ == GeneratorMode::kControlledRo && !controllers_.empty()) {
    iir_bank_active_ = true;
    const control::IirConfig* reference = nullptr;
    for (const auto& controller : controllers_) {
      const auto* iir =
          dynamic_cast<const control::IirControlHardware*>(controller.get());
      if (iir == nullptr) {
        iir_bank_active_ = false;
        break;
      }
      if (reference == nullptr) {
        reference = &iir->config();
      } else if (iir->config().taps != reference->taps ||
                 iir->config().k_exp != reference->k_exp ||
                 iir->config().k_star != reference->k_star ||
                 iir->config().anti_windup != reference->anti_windup) {
        iir_bank_active_ = false;
        break;
      }
    }
    if (iir_bank_active_) {
      iir_k_exp_gain_ = PowerOfTwoGain::from_value(reference->k_exp).value();
      iir_k_star_gain_ = PowerOfTwoGain::from_value(reference->k_star).value();
      iir_tap_gains_.reserve(reference->taps.size());
      for (double k : reference->taps) {
        iir_tap_gains_.push_back(PowerOfTwoGain::from_value(k).value());
      }
      iir_k_exp_ = reference->k_exp;
      if (reference->anti_windup.has_value()) {
        // Mirror of IirControlHardware's pre-resolved anti-windup clamp.
        iir_aw_enabled_ = true;
        iir_aw_min_ = static_cast<std::int64_t>(
            llround_ties_away(reference->anti_windup->min_output));
        iir_aw_max_ = static_cast<std::int64_t>(
            llround_ties_away(reference->anti_windup->max_output));
      }
    }
  }

  const std::size_t total = configs_.size();
  chunks_.reserve((total + kChunkLanes - 1) / kChunkLanes);
  for (std::size_t first = 0; first < total; first += kChunkLanes) {
    const std::size_t cw = std::min(kChunkLanes, total - first);
    Chunk chunk;
    chunk.first = first;
    chunk.width = cw;
    chunk.prev_lro.resize(cw);
    chunk.prev_t_dlv.resize(cw);
    chunk.prev_e_ro.resize(cw);
    chunk.prev_e_local.resize(cw);
    chunk.setpoint.resize(cw);
    chunk.open_loop.resize(cw);
    chunk.min_len.resize(cw);
    chunk.max_len.resize(cw);
    chunk.min_len_d.resize(cw);
    chunk.max_len_d.resize(cw);
    chunk.cdn_delay.resize(cw);
    chunk.cdn_history_d.resize(cw);
    chunk.cdn_history.resize(cw);
    chunk.cdn_initial.resize(cw);
    chunk.tau.resize(cw);
    chunk.delta.resize(cw);
    chunk.lro.resize(cw);
    chunk.t_gen.resize(cw);
    chunk.t_dlv.resize(cw);
    chunk.violation.resize(cw);

    std::size_t max_history = 2;
    for (std::size_t w = 0; w < cw; ++w) {
      const LoopConfig& config = configs_[first + w];
      chunk.integral_setpoints = chunk.integral_setpoints &&
                                 config.setpoint_c ==
                                     std::trunc(config.setpoint_c);
      chunk.setpoint[w] = config.setpoint_c;
      chunk.open_loop[w] =
          config.open_loop_period.value_or(config.setpoint_c);
      chunk.min_len[w] = config.min_length;
      chunk.max_len[w] = config.max_length;
      chunk.min_len_d[w] = static_cast<double>(config.min_length);
      chunk.max_len_d[w] = static_cast<double>(config.max_length);
      const std::size_t history = detail::cdn_history_for(config);
      chunk.cdn_delay[w] = config.cdn_delay_stages;
      chunk.cdn_history[w] = history;
      chunk.cdn_history_d[w] = static_cast<double>(history - 2);
      max_history = std::max(max_history, history);
    }
    chunk.ring_slots = std::bit_ceil(max_history);
    // Mask indexing into the interleaved ring is only sound on a
    // power-of-two slot count; bit_ceil guarantees it, the check keeps the
    // invariant explicit if the sizing logic ever changes.
    ROCLK_DCHECK(is_power_of_two(chunk.ring_slots),
                 "interleaved CDN ring slots must be a power of two, got "
                     << chunk.ring_slots);
    chunk.slot_mask = chunk.ring_slots - 1;
    chunk.ring.assign(chunk.ring_slots * cw, 0.0);
    if (iir_bank_active_) {
      chunk.iir_state.assign(iir_tap_gains_.size() * cw, 0);
      chunk.iir_prev_input.assign(cw, 0);
    }
    chunks_.push_back(std::move(chunk));
  }

  simd_domain_ok_ =
      static_cast<double>(tdc_.config().max_reading) <= kSimdMaxMagnitude;
  for (const LoopConfig& config : configs_) {
    simd_domain_ok_ =
        simd_domain_ok_ &&
        std::abs(config.setpoint_c) <= kSimdMaxMagnitude &&
        std::abs(static_cast<double>(config.min_length)) <=
            kSimdMaxMagnitude &&
        std::abs(static_cast<double>(config.max_length)) <=
            kSimdMaxMagnitude;
  }

  reset();
}

EnsembleSimulator EnsembleSimulator::uniform(
    const LoopConfig& config, const control::ControlBlock* prototype,
    std::size_t width) {
  ROCLK_CHECK(width > 0, "ensemble needs at least one lane");
  std::vector<LoopConfig> configs(width, config);
  std::vector<std::unique_ptr<control::ControlBlock>> controllers;
  if (config.mode == GeneratorMode::kControlledRo) {
    ROCLK_CHECK(prototype != nullptr,
                  "controlled ensemble needs a controller prototype");
    controllers.reserve(width);
    for (std::size_t w = 0; w < width; ++w) {
      controllers.push_back(prototype->clone());
    }
  }
  return EnsembleSimulator{std::move(configs), std::move(controllers)};
}

void EnsembleSimulator::reset() {
  for (Chunk& chunk : chunks_) {
    const std::size_t cw = chunk.width;
    chunk.pushes = 0;
    for (std::size_t w = 0; w < cw; ++w) {
      const LoopConfig& config = configs_[chunk.first + w];
      const double equilibrium = detail::equilibrium_for(config);
      chunk.prev_lro[w] = equilibrium;
      chunk.prev_t_dlv[w] = equilibrium;
      chunk.prev_e_ro[w] = 0.0;
      chunk.prev_e_local[w] = 0.0;
      chunk.cdn_initial[w] = equilibrium;
      for (std::size_t s = 0; s < chunk.ring_slots; ++s) {
        chunk.ring[s * cw + w] = equilibrium;
      }
      if (iir_bank_active_) {
        // IirControlHardware::reset: W = round(initial_output * k_exp) in
        // every tap register, previous input cleared.
        const auto w0 = static_cast<std::int64_t>(
            llround_ties_away(equilibrium * iir_k_exp_));
        for (std::size_t i = 0; i < iir_tap_gains_.size(); ++i) {
          chunk.iir_state[i * cw + w] = w0;
        }
        chunk.iir_prev_input[w] = 0;
      }
    }
    chunk.iir_head = 0;
    for (fault::FaultInjector& injector : chunk.injectors) injector.reset();
    std::fill(chunk.isolated.begin(), chunk.isolated.end(),
              std::uint8_t{0});
  }
  for (std::size_t lane = 0; lane < controllers_.size(); ++lane) {
    controllers_[lane]->reset(detail::equilibrium_for(configs_[lane]));
  }
}

void EnsembleSimulator::attach_faults(
    std::vector<fault::FaultSchedule> schedules) {
  ROCLK_CHECK(schedules.size() == width(),
              "need one fault schedule per lane (empty = fault-free), got "
                  << schedules.size() << " for " << width() << " lanes");
  faults_active_ = true;
  for (Chunk& chunk : chunks_) {
    chunk.injectors.clear();
    chunk.injectors.reserve(chunk.width);
    chunk.has_fault_events = false;
    for (std::size_t w = 0; w < chunk.width; ++w) {
      const fault::FaultSchedule& schedule = schedules[chunk.first + w];
      chunk.has_fault_events = chunk.has_fault_events || !schedule.empty();
      chunk.injectors.emplace_back(schedule);
    }
    chunk.isolated.assign(chunk.width, 0);
  }
}

void EnsembleSimulator::clear_faults() {
  faults_active_ = false;
  for (Chunk& chunk : chunks_) {
    chunk.injectors.clear();
    chunk.isolated.clear();
    chunk.has_fault_events = false;
  }
}

bool EnsembleSimulator::isolated(std::size_t lane) const {
  ROCLK_CHECK(lane < width(), "lane out of range");
  if (!faults_active_) return false;
  const Chunk& chunk = chunks_[lane / kChunkLanes];
  return chunk.isolated[lane - chunk.first] != 0;
}

std::size_t EnsembleSimulator::isolated_count() const {
  std::size_t count = 0;
  for (const Chunk& chunk : chunks_) {
    for (std::uint8_t flag : chunk.isolated) count += flag != 0 ? 1 : 0;
  }
  return count;
}

namespace {

/// Control policy for the open-loop generator modes: never consulted (the
/// kernel's `controlled` branch is false) but keeps run_chunk uniform.
struct OpenLoopControl {
  static double step(std::size_t, double) { return 0.0; }
  static void end_cycle() {}
};

/// Fallback control policy: one virtual ControlBlock per lane.
struct VirtualControl {
  control::ControlBlock* const* controllers;  // chunk's first lane
  [[nodiscard]] double step(std::size_t w, double delta) const {
    return controllers[w]->step(delta);
  }
  static void end_cycle() {}
};

/// Devirtualized IIR bank policy.  The tap rows are addressed through a
/// newest-first pointer ring: step() reads the feedback taps, overwrites
/// the oldest row in place with the new state, and end_cycle() rotates the
/// ring so that row becomes rows[0] — the shift register advances with one
/// pointer rotation per cycle instead of taps-1 moves per lane.
struct IirBankControl {
  const PowerOfTwoGain* tap_gains;
  std::size_t taps;
  PowerOfTwoGain k_exp_gain;
  PowerOfTwoGain k_star_gain;
  std::int64_t* prev_input;
  std::vector<std::int64_t*> rows;  // rows[i] = W[n-1-i]'s physical row
  // True when delta is always exactly integral (integral set-points and a
  // quantizing TDC): the ties-away rounding of the bank input collapses to
  // a cast with identical results.
  bool integral_input{false};
  // IirControlHardware's pre-resolved anti-windup clamp.
  bool aw_enabled{false};
  std::int64_t aw_min{0};
  std::int64_t aw_max{0};

  double step(std::size_t w, double delta) {
    // IirControlHardware::step on the lane-strided integer bank.
    std::int64_t* const* const r = rows.data();
    std::int64_t feedback = 0;
    for (std::size_t i = 0; i < taps; ++i) {
      feedback += tap_gains[i].apply(r[i][w]);
    }
    const std::int64_t a = k_exp_gain.apply(prev_input[w]) + feedback;
    const std::int64_t state = k_star_gain.apply(a);
    r[taps - 1][w] = state;  // all taps are read; reuse the oldest row
    prev_input[w] = integral_input ? static_cast<std::int64_t>(delta)
                                   : llround_ties_away(delta);
    const std::int64_t y = shift_signed(state, -k_exp_gain.exponent());
    if (aw_enabled) {
      const std::int64_t bounded = std::clamp(y, aw_min, aw_max);
      if (bounded != y) r[taps - 1][w] = k_exp_gain.apply(bounded);
    }
    return static_cast<double>(y);
  }
  void end_cycle() {
    std::rotate(rows.begin(), rows.end() - 1, rows.end());
  }
};

}  // namespace

// The per-chunk kernel.  Lane w executes exactly the arithmetic of
// LoopSimulator::step_impl, in the same order, against its own CDN
// boundary conditions — the equivalence tests rely on this being
// bit-for-bit faithful.  The libm ties-away rounders are replaced by the
// bit-exact inline round_ties_away / llround_ties_away (common/math.hpp),
// every per-lane array is hoisted to a raw pointer so the eight lane
// dependency chains stay register-resident, and the TDC/CDN quantization
// switches are resolved at compile time.
template <bool kIntegralCommand, bool kFaults, sensor::Quantization TdcQ,
          cdn::DelayQuantization CdnQ, typename Control>
void EnsembleSimulator::run_chunk(Chunk& chunk,
                                  const EnsembleInputBlock& block,
                                  StreamingReducer& reducer,
                                  Control& control) {
  const std::size_t cw = chunk.width;
  const std::size_t stride = block.width;
  const std::size_t cycles = block.cycles;
  const bool controlled = mode_ == GeneratorMode::kControlledRo;
  const bool fixed_clock = mode_ == GeneratorMode::kFixedClock;
  const bool quantize_lro = quantize_lro_;

  // Tdc::measure_additive with its configuration hoisted out of the loop.
  const sensor::TdcConfig& tdc = tdc_.config();
  const double tdc_mismatch = tdc.mismatch_stages;
  const double tdc_max = static_cast<double>(tdc.max_reading);

  // __restrict: the chunk's arrays are distinct allocations, so stores
  // through one never alias loads through another — this keeps the lane
  // dependency chains schedulable across the ring/staging stores.
  double* __restrict const prev_lro = chunk.prev_lro.data();
  double* __restrict const prev_t_dlv = chunk.prev_t_dlv.data();
  double* __restrict const prev_e_ro = chunk.prev_e_ro.data();
  double* __restrict const prev_e_local = chunk.prev_e_local.data();
  const double* __restrict const setpoint = chunk.setpoint.data();
  const double* __restrict const open_loop = chunk.open_loop.data();
  const std::int64_t* __restrict const min_len = chunk.min_len.data();
  const std::int64_t* __restrict const max_len = chunk.max_len.data();
  const double* __restrict const min_len_d = chunk.min_len_d.data();
  const double* __restrict const max_len_d = chunk.max_len_d.data();
  double* __restrict const ring = chunk.ring.data();
  const std::size_t slot_mask = chunk.slot_mask;
  const double* __restrict const cdn_delay = chunk.cdn_delay.data();
  const double* __restrict const cdn_history_d = chunk.cdn_history_d.data();
  const std::uint64_t* const cdn_history = chunk.cdn_history.data();
  const double* __restrict const cdn_initial = chunk.cdn_initial.data();
  double* __restrict const out_tau = chunk.tau.data();
  double* __restrict const out_delta = chunk.delta.data();
  double* __restrict const out_lro = chunk.lro.data();
  double* __restrict const out_t_gen = chunk.t_gen.data();
  double* __restrict const out_t_dlv = chunk.t_dlv.data();
  std::uint8_t* __restrict const out_violation = chunk.violation.data();
  [[maybe_unused]] fault::FaultInjector* const injectors =
      chunk.injectors.data();
  [[maybe_unused]] std::uint8_t* const isolated = chunk.isolated.data();

  const bool full_slice = reducer.wants_full_slice();

  LaneSlice slice;
  slice.first_lane = chunk.first;
  slice.width = cw;
  slice.tau = out_tau;
  slice.delta = out_delta;
  slice.lro = out_lro;
  slice.t_gen = out_t_gen;
  slice.t_dlv = out_t_dlv;
  slice.violation = out_violation;
  if constexpr (kFaults) slice.isolated = isolated;

  std::uint64_t pos = chunk.pushes;
  for (std::size_t k = 0; k < cycles; ++k) {
    const double* const e_ro = block.e_ro.data() + k * stride + chunk.first;
    const double* const e_tdc = block.e_tdc.data() + k * stride + chunk.first;
    const double* const mu = block.mu.data() + k * stride + chunk.first;

    // Period generated `m` cycles before this cycle's push, with the same
    // boundary rule as QuantizedTimeCdn::look_back: beyond the lane's
    // history window, or before the simulation started, the clock ran at
    // the initial (equilibrium) period.
    const auto look_back = [&](std::size_t w, std::uint64_t m) -> double {
      if (m >= cdn_history[w] || m > pos) return cdn_initial[w];
      return ring[((pos - m) & slot_mask) * cw + w];
    };

    for (std::size_t w = 0; w < cw; ++w) {
      // An isolated lane is frozen: its staging entries keep the last good
      // cycle, exactly like LoopSimulator's frozen record.
      [[maybe_unused]] fault::CycleFaults faults;
      if constexpr (kFaults) {
        if (isolated[w] != 0) continue;
        faults = injectors[w].begin_cycle(pos);
      }

      // TDC (one-cycle latency): Tdc::measure_additive inlined, with the
      // identical operation order (delivered - e_local, then + mismatch).
      ROCLK_CHECK(prev_t_dlv[w] > 0.0,
                  "delivered period must be positive, got "
                      << prev_t_dlv[w] << " stages (lane "
                      << chunk.first + w << ")");
      const double e_local = prev_e_local[w];
      const double raw = prev_t_dlv[w] - e_local + tdc_mismatch;
      double tau;
      if constexpr (TdcQ == sensor::Quantization::kFloor) {
        tau = std::floor(raw);
      } else if constexpr (TdcQ == sensor::Quantization::kNearest) {
        tau = round_ties_away(raw);
      } else {
        tau = raw;
      }
      tau = std::clamp(tau, 0.0, tdc_max);
      // Violation is judged on the TRUE reading, before any sensor fault
      // (same rule as LoopSimulator::step_impl).
      const std::uint8_t viol = tau < setpoint[w] ? 1 : 0;
      if constexpr (kFaults) {
        if (faults.any) {
          if (faults.tau_stuck) {
            tau = std::clamp(faults.tau_stuck_value, 0.0, tdc_max);
          } else if (faults.tau_dropped) {
            tau = 0.0;
          } else if (faults.tau_glitch != 0.0) {
            tau = std::clamp(tau + faults.tau_glitch, 0.0, tdc_max);
          }
        }
      }
      const double delta = setpoint[w] - tau;

      // Controller / generator.
      double lro_now;
      if (controlled) {
        const double commanded = control.step(w, delta);
        if (quantize_lro) {
          const std::int64_t length =
              kIntegralCommand ? static_cast<std::int64_t>(commanded)
                               : llround_ties_away(commanded);
          lro_now = static_cast<double>(
              std::clamp(length, min_len[w], max_len[w]));
        } else {
          lro_now = std::clamp(commanded, min_len_d[w], max_len_d[w]);
        }
      } else {
        lro_now = open_loop[w];
      }

      // RO (one-cycle latency; a fixed clock ignores on-die variation).
      // An active stage failure steps the l_RO -> period mapping.
      const double e_at_ro = fixed_clock ? 0.0 : prev_e_ro[w];
      double t_gen_raw = prev_lro[w] + e_at_ro;
      if constexpr (kFaults) {
        if (faults.any && faults.ro_offset != 0.0) {
          t_gen_raw += faults.ro_offset;
        }
      }
      const double t_gen = std::max(1.0, t_gen_raw);

      // CDN push into the interleaved ring, then the quantised look-back.
      ring[(pos & slot_mask) * cw + w] = t_gen;
      const double d = std::min(cdn_delay[w] / t_gen, cdn_history_d[w]);
      double t_dlv;
      if constexpr (CdnQ == cdn::DelayQuantization::kRound) {
        t_dlv = look_back(
            w, static_cast<std::uint64_t>(llround_ties_away(d)));
      } else if constexpr (CdnQ == cdn::DelayQuantization::kFloor) {
        t_dlv = look_back(w, static_cast<std::uint64_t>(std::floor(d)));
      } else {
        const auto m0 = static_cast<std::uint64_t>(std::floor(d));
        const double frac = d - std::floor(d);
        const double v0 = look_back(w, m0);
        if (frac == 0.0) {
          t_dlv = v0;
        } else {
          const double v1 = look_back(w, m0 + 1);
          t_dlv = v0 * (1.0 - frac) + v1 * frac;
        }
      }
      if constexpr (kFaults) {
        // A delivery drop swallows the leaf edge: a doubled period this
        // cycle, with the tree's pipeline unaffected.
        if (faults.any && faults.cdn_drop) t_dlv *= 2.0;
        // Lane isolation: a non-physical signal freezes the lane BEFORE
        // anything is staged or latched, so it can never reach a reducer.
        if (!std::isfinite(tau) || !std::isfinite(t_dlv) || t_dlv <= 0.0) {
          isolated[w] = 1;
          continue;
        }
      }

      out_tau[w] = tau;
      out_delta[w] = delta;
      if (full_slice) {
        out_lro[w] = lro_now;
        out_t_gen[w] = t_gen;
      }
      out_t_dlv[w] = t_dlv;
      out_violation[w] = viol;

      // Advance the z^-1 delay registers.
      prev_lro[w] = lro_now;
      prev_t_dlv[w] = t_dlv;
      prev_e_ro[w] = e_ro[w];
      // The TDC only ever reads e_tdc - mu; folding the subtraction
      // here (same operands, same op) keeps one delay register instead
      // of two while staying bit-identical to Tdc::measure_additive.
      prev_e_local[w] = e_tdc[w] - mu[w];
      if constexpr (kFaults) {
        // A supply droop slows the whole die: both the RO and the TDC
        // chain see the extra stages next cycle.  The operand order
        // matches the scalar simulator's `prev_e_tdc_ += droop` so the
        // two engines stay bit-for-bit equal under faults.
        if (faults.any && faults.droop != 0.0) {
          prev_e_ro[w] = e_ro[w] + faults.droop;
          prev_e_local[w] = (e_tdc[w] + faults.droop) - mu[w];
        }
      }
    }
    control.end_cycle();
    ++pos;

    slice.cycle = k;
    reducer.accumulate(slice);
  }
  chunk.pushes = pos;
}

template <bool kIntegralCommand, bool kFaults, sensor::Quantization TdcQ,
          typename Control>
void EnsembleSimulator::dispatch_cdn(Chunk& chunk,
                                     const EnsembleInputBlock& block,
                                     StreamingReducer& reducer,
                                     Control& control) {
  switch (cdn_quantization_) {
    case cdn::DelayQuantization::kRound:
      run_chunk<kIntegralCommand, kFaults, TdcQ,
                cdn::DelayQuantization::kRound>(chunk, block, reducer,
                                                control);
      break;
    case cdn::DelayQuantization::kFloor:
      run_chunk<kIntegralCommand, kFaults, TdcQ,
                cdn::DelayQuantization::kFloor>(chunk, block, reducer,
                                                control);
      break;
    case cdn::DelayQuantization::kLinearInterp:
      run_chunk<kIntegralCommand, kFaults, TdcQ,
                cdn::DelayQuantization::kLinearInterp>(chunk, block, reducer,
                                                       control);
      break;
  }
}

template <bool kIntegralCommand, bool kFaults, typename Control>
void EnsembleSimulator::dispatch_tdc(Chunk& chunk,
                                     const EnsembleInputBlock& block,
                                     StreamingReducer& reducer,
                                     Control& control) {
  switch (tdc_.config().quantization) {
    case sensor::Quantization::kFloor:
      dispatch_cdn<kIntegralCommand, kFaults, sensor::Quantization::kFloor>(
          chunk, block, reducer, control);
      break;
    case sensor::Quantization::kNearest:
      dispatch_cdn<kIntegralCommand, kFaults,
                   sensor::Quantization::kNearest>(chunk, block, reducer,
                                                   control);
      break;
    case sensor::Quantization::kNone:
      dispatch_cdn<kIntegralCommand, kFaults, sensor::Quantization::kNone>(
          chunk, block, reducer, control);
      break;
  }
}

template <bool kIntegralCommand, typename Control>
void EnsembleSimulator::dispatch_chunk(Chunk& chunk,
                                       const EnsembleInputBlock& block,
                                       StreamingReducer& reducer,
                                       Control& control) {
  // The fault-free kernel is its own instantiation: runs without faults
  // execute exactly the pre-fault code.
  if (faults_active_) {
    dispatch_tdc<kIntegralCommand, true>(chunk, block, reducer, control);
  } else {
    dispatch_tdc<kIntegralCommand, false>(chunk, block, reducer, control);
  }
}

bool EnsembleSimulator::chunk_simd_eligible(const Chunk& chunk) const {
  // Per-lane virtual controllers, chunks with armed fault events, and
  // configs outside the exact-conversion window keep the scalar reference
  // kernel (for faults: bit-for-bit replay is the contract).
  if (!simd_domain_ok_) return false;
  if (mode_ == GeneratorMode::kControlledRo && !iir_bank_active_) {
    return false;
  }
  if (faults_active_ && chunk.has_fault_events) return false;
  return true;
}

void EnsembleSimulator::run_chunk_simd(Chunk& chunk,
                                       const EnsembleInputBlock& block,
                                       StreamingReducer& reducer,
                                       simd::Backend backend) {
  detail::SimdChunkArgs args;
  args.first = chunk.first;
  args.cw = chunk.width;
  args.cycles = block.cycles;
  args.stride = block.width;
  args.e_ro = block.e_ro.data();
  args.e_tdc = block.e_tdc.data();
  args.mu = block.mu.data();
  args.prev_lro = chunk.prev_lro.data();
  args.prev_t_dlv = chunk.prev_t_dlv.data();
  args.prev_e_ro = chunk.prev_e_ro.data();
  args.prev_e_local = chunk.prev_e_local.data();
  args.setpoint = chunk.setpoint.data();
  args.open_loop = chunk.open_loop.data();
  args.min_len = chunk.min_len.data();
  args.max_len = chunk.max_len.data();
  args.min_len_d = chunk.min_len_d.data();
  args.max_len_d = chunk.max_len_d.data();
  args.ring = chunk.ring.data();
  args.slot_mask = chunk.slot_mask;
  args.cdn_delay = chunk.cdn_delay.data();
  args.cdn_history_d = chunk.cdn_history_d.data();
  args.cdn_history = chunk.cdn_history.data();
  args.cdn_initial = chunk.cdn_initial.data();
  args.pushes = &chunk.pushes;
  args.out_tau = chunk.tau.data();
  args.out_delta = chunk.delta.data();
  args.out_lro = chunk.lro.data();
  args.out_t_gen = chunk.t_gen.data();
  args.out_t_dlv = chunk.t_dlv.data();
  args.out_violation = chunk.violation.data();
  args.fixed_clock = mode_ == GeneratorMode::kFixedClock;
  args.quantize_lro = quantize_lro_;
  args.tdc_q = tdc_.config().quantization;
  args.cdn_q = cdn_quantization_;
  args.tdc_mismatch = tdc_.config().mismatch_stages;
  args.tdc_max = static_cast<double>(tdc_.config().max_reading);
  args.use_iir_bank = mode_ == GeneratorMode::kControlledRo;
  if (args.use_iir_bank) {
    args.iir.tap_gains = iir_tap_gains_.data();
    args.iir.taps = iir_tap_gains_.size();
    args.iir.k_exp_gain = iir_k_exp_gain_;
    args.iir.k_star_gain = iir_k_star_gain_;
    args.iir.prev_input = chunk.iir_prev_input.data();
    args.iir.bank = chunk.iir_state.data();
    args.iir.head = &chunk.iir_head;
    // Same deduction as the scalar IIR bank policy below: an integral
    // delta (integral set-points, quantizing TDC, no faults) lets the
    // bank cast its input instead of rounding, with identical results.
    args.iir.integral_input =
        chunk.integral_setpoints && !faults_active_ &&
        tdc_.config().quantization != sensor::Quantization::kNone;
    args.iir.aw_enabled = iir_aw_enabled_;
    args.iir.aw_min = iir_aw_min_;
    args.iir.aw_max = iir_aw_max_;
  }
  args.reducer = &reducer;
  args.full_slice = reducer.wants_full_slice();
  args.isolated_flags = faults_active_ ? chunk.isolated.data() : nullptr;

  switch (backend) {
    case simd::Backend::kAvx2:
#ifdef ROCLK_SIMD_HAVE_AVX2
      detail::run_chunk_simd_avx2(args);
      return;
#else
      break;
#endif
    case simd::Backend::kNeon:
#ifdef ROCLK_SIMD_HAVE_NEON
      detail::run_chunk_simd_neon(args);
      return;
#else
      break;
#endif
    case simd::Backend::kScalar:
      break;
  }
  detail::run_chunk_simd_scalar(args);
}

void EnsembleSimulator::run_one_chunk(Chunk& chunk,
                                      const EnsembleInputBlock& block,
                                      StreamingReducer& reducer,
                                      simd::Backend backend) {
  if (chunk_simd_eligible(chunk)) {
    run_chunk_simd(chunk, block, reducer, backend);
    return;
  }
  if (mode_ != GeneratorMode::kControlledRo) {
    OpenLoopControl control;
    dispatch_chunk<false>(chunk, block, reducer, control);
    return;
  }
  if (iir_bank_active_) {
    // The bank's output double(y) is exactly integral, so the kernel casts
    // instead of rounding (kIntegralCommand).
    const std::size_t taps = iir_tap_gains_.size();
    const std::size_t cw = chunk.width;
    std::int64_t* const bank = chunk.iir_state.data();
    IirBankControl control;
    control.tap_gains = iir_tap_gains_.data();
    control.taps = taps;
    control.k_exp_gain = iir_k_exp_gain_;
    control.k_star_gain = iir_k_star_gain_;
    control.prev_input = chunk.iir_prev_input.data();
    // delta = setpoint - tau is exactly integral when the set-points are
    // integers and the TDC floors or rounds (tau and the clamp bounds are
    // then integral), so the bank input needs no rounding.  Fault
    // injection voids the deduction: a stuck or glitched reading carries
    // an arbitrary real magnitude past the quantizer, so faulted chunks
    // keep the ties-away rounding of the scalar controller.
    control.integral_input =
        chunk.integral_setpoints && !faults_active_ &&
        tdc_.config().quantization != sensor::Quantization::kNone;
    control.aw_enabled = iir_aw_enabled_;
    control.aw_min = iir_aw_min_;
    control.aw_max = iir_aw_max_;
    control.rows.resize(taps);
    for (std::size_t i = 0; i < taps; ++i) {
      control.rows[i] = bank + ((chunk.iir_head + i) % taps) * cw;
    }
    dispatch_chunk<true>(chunk, block, reducer, control);
    // Persist the ring phase so the next tile continues the shift register.
    chunk.iir_head =
        static_cast<std::size_t>(control.rows[0] - bank) / cw;
    return;
  }
  std::vector<control::ControlBlock*> lane_controllers(chunk.width);
  for (std::size_t w = 0; w < chunk.width; ++w) {
    lane_controllers[w] = controllers_[chunk.first + w].get();
  }
  VirtualControl control{lane_controllers.data()};
  dispatch_chunk<false>(chunk, block, reducer, control);
}

void EnsembleSimulator::run(const EnsembleInputBlock& block,
                            StreamingReducer& reducer, bool parallel) {
  ROCLK_CHECK(block.width == width(),
              "input block has " << block.width << " lanes but the ensemble "
                                 << width());
  if (block.empty()) return;
  const std::size_t samples = block.width * block.cycles;
  ROCLK_CHECK(block.e_ro.size() == samples &&
                  block.e_tdc.size() == samples &&
                  block.mu.size() == samples,
              "ragged ensemble block: expected "
                  << samples << " samples per signal, got e_ro="
                  << block.e_ro.size() << ", e_tdc=" << block.e_tdc.size()
                  << ", mu=" << block.mu.size());
  // Resolved once per run: every chunk of one call uses one backend.
  const simd::Backend backend = simd::active_backend();
  if (parallel && chunks_.size() > 1) {
    parallel_for(chunks_.size(), [&](std::size_t i) {
      run_one_chunk(chunks_[i], block, reducer, backend);
    });
    return;
  }
  for (Chunk& chunk : chunks_) {
    run_one_chunk(chunk, block, reducer, backend);
  }
}

void EnsembleSimulator::run(const EnsembleInputBlock& block,
                            StreamingReducer& reducer, ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || chunks_.size() <= 1) {
    run(block, reducer, /*parallel=*/false);
    return;
  }
  ROCLK_CHECK(block.width == width(),
              "input block has " << block.width << " lanes but the ensemble "
                                 << width());
  if (block.empty()) return;
  const std::size_t samples = block.width * block.cycles;
  ROCLK_CHECK(block.e_ro.size() == samples &&
                  block.e_tdc.size() == samples &&
                  block.mu.size() == samples,
              "ragged ensemble block: expected "
                  << samples << " samples per signal, got e_ro="
                  << block.e_ro.size() << ", e_tdc=" << block.e_tdc.size()
                  << ", mu=" << block.mu.size());
  const simd::Backend backend = simd::active_backend();
  parallel_for(*pool, chunks_.size(), [&](std::size_t i) {
    run_one_chunk(chunks_[i], block, reducer, backend);
  });
}

}  // namespace roclk::core
