// Portable scalar-pack backend of the ensemble SIMD kernel: the generic
// template instantiated over ScalarTraits<4>.  Always compiled; the
// fallback when no vector backend is available (or when ROCLK_SIMD=scalar
// forces it), and the reference the vector backends are tested against.
#include "ensemble_simd_kernel.hpp"

namespace roclk::core::detail {

void run_chunk_simd_scalar(const SimdChunkArgs& args) {
  run_chunk_simd_impl<simd::ScalarTraits<4>>(args);
}

}  // namespace roclk::core::detail
