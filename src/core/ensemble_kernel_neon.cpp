// NEON (AArch64 AdvSIMD) backend of the ensemble SIMD kernel.  AdvSIMD is
// architecturally mandatory on AArch64, so no extra -m flags are needed;
// the TU compiles to nothing elsewhere.
#include "ensemble_simd_kernel.hpp"

#ifdef ROCLK_SIMD_HAVE_NEON

namespace roclk::core::detail {

void run_chunk_simd_neon(const SimdChunkArgs& args) {
  run_chunk_simd_impl<simd::NeonTraits>(args);
}

}  // namespace roclk::core::detail

#endif  // ROCLK_SIMD_HAVE_NEON
