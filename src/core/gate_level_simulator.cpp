#include "roclk/core/gate_level_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "roclk/common/math.hpp"

namespace roclk::core {

Status GateLevelSimulator::validate(const GateLevelConfig& config) {
  if (config.setpoint_c <= 0.0) {
    return Status::invalid_argument("set-point must be positive");
  }
  if (config.cdn_delay_stages < 0.0) {
    return Status::invalid_argument("CDN delay cannot be negative");
  }
  if (config.tdcs.empty()) {
    return Status::invalid_argument("need at least one TDC");
  }
  if (Status s = osc::StageChain::validate(config.ro_chain); !s.is_ok()) {
    return s;
  }
  if (config.ro_max_length < config.ro_min_length) {
    return Status::invalid_argument("empty RO tap range");
  }
  return Status::ok();
}

GateLevelSimulator::GateLevelSimulator(
    GateLevelConfig config, std::unique_ptr<control::ControlBlock> controller)
    : config_{std::move(config)},
      controller_{std::move(controller)},
      ro_{config_.ro_chain, config_.ro_min_length, config_.ro_max_length},
      cdn_{config_.cdn_delay_stages,
           /*history=*/static_cast<std::size_t>(std::max(
               64.0, 8.0 * config_.cdn_delay_stages /
                         static_cast<double>(config_.ro_min_length))) +
               2,
           config_.cdn_quantization},
      jitter_{config_.jitter} {
  ROCLK_CHECK_OK(validate(config_));
  ROCLK_CHECK(controller_ != nullptr,
                "gate-level simulator requires a controller");
  tdcs_.reserve(config_.tdcs.size());
  for (const auto& cfg : config_.tdcs) tdcs_.emplace_back(cfg);
  reset();
}

void GateLevelSimulator::reset() {
  const double c = config_.setpoint_c;
  controller_->reset(c);
  // Nearest odd realisable equilibrium length.
  prev_lro_ = ro_.set_length(static_cast<std::int64_t>(llround_ties_away(c)));
  cdn_.reset(c);
  jitter_.reset();
  prev_t_dlv_ = c;
  time_ = 0.0;
}

StepRecord GateLevelSimulator::step(
    const variation::VariationSource& source) {
  const double c = config_.setpoint_c;
  StepRecord record;

  // TDCs measure last cycle's delivered period, each through its own chain
  // at its own location; the controller sees the worst (minimum) reading.
  double worst = std::numeric_limits<double>::infinity();
  for (auto& tdc : tdcs_) {
    worst = std::min(
        worst,
        static_cast<double>(tdc.measure(prev_t_dlv_, source, time_)));
  }
  record.tau = worst;
  record.delta = c - record.tau;
  record.violation = record.tau < c;

  // Controller commands a new length; the tap mux realises the nearest odd
  // value in range.  Effective for the *next* generated period.
  const std::int64_t commanded = static_cast<std::int64_t>(
      llround_ties_away(controller_->step(record.delta)));
  const std::int64_t lro_now = ro_.set_length(commanded);
  record.lro = static_cast<double>(lro_now);

  // RO generates this cycle's period with LAST cycle's length (the z^-1):
  // temporarily evaluate the chain with the previous tap.
  const std::int64_t realised = ro_.length();
  ro_.set_length(prev_lro_);
  double period = ro_.period_stages(source, time_) + jitter_.sample();
  ro_.set_length(realised);
  period = std::max(1.0, period);
  record.t_gen = period;

  record.t_dlv = cdn_.push(record.t_gen);

  prev_lro_ = lro_now;
  prev_t_dlv_ = record.t_dlv;
  time_ += c;
  return record;
}

SimulationTrace GateLevelSimulator::run(
    const variation::VariationSource& source, std::size_t cycles) {
  SimulationTrace trace;
  trace.reserve(cycles);
  for (std::size_t n = 0; n < cycles; ++n) {
    trace.push(step(source));
  }
  return trace;
}

}  // namespace roclk::core
