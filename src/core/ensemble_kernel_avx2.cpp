// AVX2 backend of the ensemble SIMD kernel.  This TU is the only one in
// core/ compiled with -mavx2 (see src/core/CMakeLists.txt), and only when
// the toolchain supports it; EnsembleSimulator dispatches here strictly
// behind runtime CPU detection (simd::active_backend), so the binary stays
// runnable on non-AVX2 x86.  No -mfma: FMA contraction would change
// results, and the kernel's bit-exactness contract forbids it.
#include "ensemble_simd_kernel.hpp"

#ifdef ROCLK_SIMD_HAVE_AVX2

namespace roclk::core::detail {

void run_chunk_simd_avx2(const SimdChunkArgs& args) {
  run_chunk_simd_impl<simd::Avx2Traits>(args);
}

}  // namespace roclk::core::detail

#endif  // ROCLK_SIMD_HAVE_AVX2
