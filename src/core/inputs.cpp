#include "roclk/core/inputs.hpp"

#include <algorithm>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/common/thread_pool.hpp"

namespace roclk::core {

InputBlock EnsembleInputBlock::lane(std::size_t w) const {
  ROCLK_CHECK(w < width, "lane out of range");
  InputBlock block;
  block.dt = dt;
  block.e_ro.resize(cycles);
  block.e_tdc.resize(cycles);
  block.mu.resize(cycles);
  for (std::size_t k = 0; k < cycles; ++k) {
    const std::size_t idx = k * width + w;
    block.e_ro[k] = e_ro[idx];
    block.e_tdc[k] = e_tdc[idx];
    block.mu[k] = mu[idx];
  }
  return block;
}

EnsembleInputBlock EnsembleInputBlock::from_blocks(
    std::span<const InputBlock> blocks) {
  ROCLK_CHECK(!blocks.empty(), "no lanes");
  EnsembleInputBlock out;
  out.width = blocks.size();
  out.cycles = blocks.front().size();
  out.dt = blocks.front().dt;
  for (const InputBlock& b : blocks) {
    ROCLK_CHECK(b.size() == out.cycles && b.e_tdc.size() == out.cycles &&
                      b.mu.size() == out.cycles,
                  "ragged lane blocks");
    ROCLK_CHECK(b.dt == out.dt, "lanes sampled at different dt");
  }
  out.e_ro.resize(out.width * out.cycles);
  out.e_tdc.resize(out.width * out.cycles);
  out.mu.resize(out.width * out.cycles);
  for (std::size_t w = 0; w < out.width; ++w) {
    for (std::size_t k = 0; k < out.cycles; ++k) {
      const std::size_t idx = k * out.width + w;
      out.e_ro[idx] = blocks[w].e_ro[k];
      out.e_tdc[idx] = blocks[w].e_tdc[k];
      out.mu[idx] = blocks[w].mu[k];
    }
  }
  return out;
}

SimulationInputs SimulationInputs::none() { return SimulationInputs{}; }

SimulationInputs SimulationInputs::homogeneous(
    std::shared_ptr<const signal::Waveform> waveform,
    double static_mu_stages) {
  ROCLK_CHECK(waveform != nullptr, "null waveform");
  SimulationInputs inputs;
  inputs.e_ro = [waveform](double t) { return waveform->at(t); };
  inputs.e_tdc = [waveform](double t) { return waveform->at(t); };
  inputs.mu = [static_mu_stages](double) { return static_mu_stages; };
  return inputs;
}

SimulationInputs SimulationInputs::harmonic(double amplitude_stages,
                                            double period_stages,
                                            double static_mu_stages,
                                            double phase) {
  auto wave = std::make_shared<signal::SineWaveform>(amplitude_stages,
                                                     period_stages, phase);
  return homogeneous(std::move(wave), static_mu_stages);
}

SimulationInputs SimulationInputs::from_variation_source(
    std::shared_ptr<const variation::VariationSource> source,
    double setpoint_c, variation::DiePoint ro_location, std::size_t tdc_grid) {
  ROCLK_CHECK(source != nullptr, "null variation source");
  ROCLK_CHECK(tdc_grid >= 1, "need at least one TDC");

  std::vector<variation::DiePoint> sites;
  sites.reserve(tdc_grid * tdc_grid);
  for (std::size_t ix = 0; ix < tdc_grid; ++ix) {
    for (std::size_t iy = 0; iy < tdc_grid; ++iy) {
      sites.push_back(
          {(static_cast<double>(ix) + 0.5) / static_cast<double>(tdc_grid),
           (static_cast<double>(iy) + 0.5) / static_cast<double>(tdc_grid)});
    }
  }

  SimulationInputs inputs;
  inputs.e_ro = [source, setpoint_c, ro_location](double t) {
    return setpoint_c * source->at(t, ro_location);
  };
  // The loop reacts to the *worst* sensor; the slowest site (largest v)
  // produces the smallest tau, so e_tdc tracks the maximum variation.
  inputs.e_tdc = [source, setpoint_c, sites](double t) {
    double worst = -1e300;
    for (const auto& p : sites) worst = std::max(worst, source->at(t, p));
    return setpoint_c * worst;
  };
  inputs.mu = [](double) { return 0.0; };
  return inputs;
}

InputBlock SimulationInputs::sample(std::size_t n, double dt) const {
  ROCLK_CHECK(dt > 0.0, "sample period must be positive");
  InputBlock block;
  block.dt = dt;
  block.e_ro.resize(n);
  block.e_tdc.resize(n);
  block.mu.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    block.e_ro[k] = e_ro(t);
    block.e_tdc[k] = e_tdc(t);
    block.mu[k] = mu(t);
  }
  return block;
}

EnsembleInputBlock sample_ensemble(std::span<const SimulationInputs> lanes,
                                   std::size_t n, double dt, bool parallel) {
  ROCLK_CHECK(dt > 0.0, "sample period must be positive");
  ROCLK_CHECK(!lanes.empty(), "no lanes");
  EnsembleInputBlock block;
  block.dt = dt;
  block.width = lanes.size();
  block.cycles = n;
  block.e_ro.resize(block.width * n);
  block.e_tdc.resize(block.width * n);
  block.mu.resize(block.width * n);

  // Each task fills a contiguous group of lanes (cycle-major columns), so
  // concurrent tasks never write into the same cache line.
  constexpr std::size_t kLanesPerTask = 8;
  const std::size_t tasks =
      (block.width + kLanesPerTask - 1) / kLanesPerTask;
  const auto fill_group = [&](std::size_t g) {
    const std::size_t first = g * kLanesPerTask;
    const std::size_t last = std::min(first + kLanesPerTask, block.width);
    for (std::size_t k = 0; k < n; ++k) {
      const double t = static_cast<double>(k) * dt;
      const std::size_t row = k * block.width;
      for (std::size_t w = first; w < last; ++w) {
        block.e_ro[row + w] = lanes[w].e_ro(t);
        block.e_tdc[row + w] = lanes[w].e_tdc(t);
        block.mu[row + w] = lanes[w].mu(t);
      }
    }
  };
  if (parallel) {
    parallel_for(tasks, fill_group);
  } else {
    for (std::size_t g = 0; g < tasks; ++g) fill_group(g);
  }
  return block;
}

EnsembleInputBlock sample_homogeneous_ensemble(
    const signal::Waveform& waveform,
    std::span<const double> static_mu_stages, std::size_t n, double dt) {
  EnsembleInputBlock block;
  sample_homogeneous_into(block, waveform, static_mu_stages, n, dt,
                          /*start_cycle=*/0);
  return block;
}

void sample_homogeneous_into(EnsembleInputBlock& block,
                             const signal::Waveform& waveform,
                             std::span<const double> static_mu_stages,
                             std::size_t n, double dt,
                             std::size_t start_cycle) {
  ROCLK_CHECK(dt > 0.0, "sample period must be positive");
  ROCLK_CHECK(!static_mu_stages.empty(), "no lanes");
  const std::size_t width = static_mu_stages.size();
  block.dt = dt;
  block.width = width;
  block.cycles = n;
  block.e_ro.resize(width * n);
  block.e_tdc.resize(width * n);
  block.mu.resize(width * n);
  double* const e_ro = block.e_ro.data();
  double* const e_tdc = block.e_tdc.data();
  double* const mu = block.mu.data();
  for (std::size_t k = 0; k < n; ++k) {
    const double e =
        waveform.at(static_cast<double>(start_cycle + k) * dt);
    const std::size_t row = k * width;
    std::fill_n(e_ro + row, width, e);
    std::fill_n(e_tdc + row, width, e);
    std::copy(static_mu_stages.begin(), static_mu_stages.end(), mu + row);
  }
}

}  // namespace roclk::core
