#include "roclk/core/inputs.hpp"

#include <algorithm>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::core {

SimulationInputs SimulationInputs::none() { return SimulationInputs{}; }

SimulationInputs SimulationInputs::homogeneous(
    std::shared_ptr<const signal::Waveform> waveform,
    double static_mu_stages) {
  ROCLK_REQUIRE(waveform != nullptr, "null waveform");
  SimulationInputs inputs;
  inputs.e_ro = [waveform](double t) { return waveform->at(t); };
  inputs.e_tdc = [waveform](double t) { return waveform->at(t); };
  inputs.mu = [static_mu_stages](double) { return static_mu_stages; };
  return inputs;
}

SimulationInputs SimulationInputs::harmonic(double amplitude_stages,
                                            double period_stages,
                                            double static_mu_stages,
                                            double phase) {
  auto wave = std::make_shared<signal::SineWaveform>(amplitude_stages,
                                                     period_stages, phase);
  return homogeneous(std::move(wave), static_mu_stages);
}

SimulationInputs SimulationInputs::from_variation_source(
    std::shared_ptr<const variation::VariationSource> source,
    double setpoint_c, variation::DiePoint ro_location, std::size_t tdc_grid) {
  ROCLK_REQUIRE(source != nullptr, "null variation source");
  ROCLK_REQUIRE(tdc_grid >= 1, "need at least one TDC");

  std::vector<variation::DiePoint> sites;
  sites.reserve(tdc_grid * tdc_grid);
  for (std::size_t ix = 0; ix < tdc_grid; ++ix) {
    for (std::size_t iy = 0; iy < tdc_grid; ++iy) {
      sites.push_back(
          {(static_cast<double>(ix) + 0.5) / static_cast<double>(tdc_grid),
           (static_cast<double>(iy) + 0.5) / static_cast<double>(tdc_grid)});
    }
  }

  SimulationInputs inputs;
  inputs.e_ro = [source, setpoint_c, ro_location](double t) {
    return setpoint_c * source->at(t, ro_location);
  };
  // The loop reacts to the *worst* sensor; the slowest site (largest v)
  // produces the smallest tau, so e_tdc tracks the maximum variation.
  inputs.e_tdc = [source, setpoint_c, sites](double t) {
    double worst = -1e300;
    for (const auto& p : sites) worst = std::max(worst, source->at(t, p));
    return setpoint_c * worst;
  };
  inputs.mu = [](double) { return 0.0; };
  return inputs;
}

InputBlock SimulationInputs::sample(std::size_t n, double dt) const {
  ROCLK_REQUIRE(dt > 0.0, "sample period must be positive");
  InputBlock block;
  block.dt = dt;
  block.e_ro.resize(n);
  block.e_tdc.resize(n);
  block.mu.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    block.e_ro[k] = e_ro(t);
    block.e_tdc[k] = e_tdc(t);
    block.mu[k] = mu(t);
  }
  return block;
}

}  // namespace roclk::core
