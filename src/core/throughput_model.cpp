#include "roclk/core/throughput_model.hpp"

#include <algorithm>

namespace roclk::core {

ThroughputReport evaluate_throughput(const SimulationTrace& trace,
                                     const ThroughputConfig& config,
                                     std::size_t skip) {
  ROCLK_CHECK(config.logic_depth > 0.0, "logic depth must be positive");
  ROCLK_CHECK(config.replay_penalty_cycles >= 0.0,
                "replay penalty cannot be negative");
  ROCLK_CHECK(skip <= trace.size(), "skip exceeds trace length");

  ThroughputReport report;
  const auto& tau = trace.tau();
  const auto& t_dlv = trace.delivered_period();
  for (std::size_t i = skip; i < trace.size(); ++i) {
    ++report.cycles;
    report.total_time_stages += t_dlv[i];
    if (tau[i] < config.logic_depth) ++report.errors;
  }
  report.useful_cycles =
      std::max(0.0, static_cast<double>(report.cycles) -
                        config.replay_penalty_cycles *
                            static_cast<double>(report.errors));
  if (report.total_time_stages > 0.0) {
    report.throughput_ops_per_stage =
        report.useful_cycles / report.total_time_stages;
  }
  // Ideal: one op per logic_depth stages.
  report.efficiency = report.throughput_ops_per_stage * config.logic_depth;
  return report;
}

SimulationTrace run_with_governor(LoopSimulator& simulator,
                                  control::SetpointGovernor& governor,
                                  const SimulationInputs& inputs,
                                  std::size_t n) {
  const double dt =
      simulator.config().sample_period.value_or(simulator.config().setpoint_c);
  simulator.set_setpoint(governor.setpoint());
  SimulationTrace trace;
  trace.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    const StepRecord record =
        simulator.step(inputs.e_ro(t), inputs.e_tdc(t), inputs.mu(t));
    trace.push(record);
    simulator.set_setpoint(governor.observe(record.tau));
  }
  return trace;
}

}  // namespace roclk::core
