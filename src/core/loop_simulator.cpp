#include "roclk/core/loop_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "roclk/common/math.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"

namespace roclk::core {

Status LoopSimulator::validate(const LoopConfig& config, bool has_controller) {
  if (config.setpoint_c <= 0.0) {
    std::ostringstream os;
    os << "set-point must be positive, got c=" << config.setpoint_c;
    return Status::invalid_argument(os.str());
  }
  if (config.cdn_delay_stages < 0.0) {
    std::ostringstream os;
    os << "CDN delay cannot be negative, got t_clk="
       << config.cdn_delay_stages;
    return Status::invalid_argument(os.str());
  }
  if (config.min_length < 1 || config.max_length < config.min_length) {
    std::ostringstream os;
    os << "invalid l_RO range [" << config.min_length << ", "
       << config.max_length << "]: need 1 <= min <= max";
    return Status::invalid_argument(os.str());
  }
  if (config.mode == GeneratorMode::kControlledRo && !has_controller) {
    return Status::invalid_argument("controlled mode requires a controller");
  }
  if (config.open_loop_period && *config.open_loop_period <= 0.0) {
    return Status::invalid_argument("open-loop period must be positive");
  }
  if (config.sample_period && *config.sample_period <= 0.0) {
    return Status::invalid_argument("sample period must be positive");
  }
  return Status::ok();
}

namespace detail {

std::size_t cdn_history_for(const LoopConfig& config) {
  return static_cast<std::size_t>(
             std::max(64.0, 8.0 * config.cdn_delay_stages /
                                static_cast<double>(config.min_length))) +
         2;
}

sensor::TdcConfig tdc_config_for(const LoopConfig& config) {
  sensor::TdcConfig tdc;
  tdc.quantization = config.tdc_quantization;
  tdc.max_reading = 1 << 20;  // dynamic mu is injected per step instead
  return tdc;
}

double equilibrium_for(const LoopConfig& config) {
  return config.mode == GeneratorMode::kControlledRo
             ? config.setpoint_c
             : config.open_loop_period.value_or(config.setpoint_c);
}

}  // namespace detail

namespace {

osc::RingOscillatorConfig make_ro_config(const LoopConfig& config) {
  osc::RingOscillatorConfig ro;
  ro.min_length = config.min_length;
  ro.max_length = config.max_length;
  const double initial = config.open_loop_period.value_or(config.setpoint_c);
  ro.initial_length = static_cast<std::int64_t>(llround_ties_away(initial));
  ro.initial_length =
      std::clamp(ro.initial_length, ro.min_length, ro.max_length);
  return ro;
}

}  // namespace

LoopSimulator::LoopSimulator(LoopConfig config,
                             std::unique_ptr<control::ControlBlock> controller)
    : config_{config},
      controller_{std::move(controller)},
      ro_{make_ro_config(config_)},
      cdn_{config_.cdn_delay_stages, detail::cdn_history_for(config_),
           config_.cdn_quantization},
      tdc_{detail::tdc_config_for(config_)} {
  ROCLK_CHECK_OK(validate(config_, controller_ != nullptr));
  reset();
}

void LoopSimulator::set_setpoint(double setpoint_c) {
  ROCLK_CHECK(setpoint_c > 0.0,
              "set-point must be positive, got c=" << setpoint_c);
  config_.setpoint_c = setpoint_c;
}

void LoopSimulator::reset() {
  const double equilibrium = detail::equilibrium_for(config_);
  if (controller_) controller_->reset(equilibrium);
  ro_.set_length(static_cast<std::int64_t>(llround_ties_away(equilibrium)));
  cdn_.reset(equilibrium);
  prev_lro_ = equilibrium;
  prev_t_dlv_ = equilibrium;
  prev_e_ro_ = 0.0;
  prev_e_tdc_ = 0.0;
  prev_mu_ = 0.0;
}

template <typename ControlFn>
StepRecord LoopSimulator::step_impl(double e_ro, double e_tdc, double mu,
                                    ControlFn&& control_step) {
  StepRecord record;

  // TDC (one-cycle latency): measure the period delivered last cycle under
  // last cycle's local conditions.
  // tau = quantise(T_dlv - e_tdc + mu): fold mu into the additive reading.
  record.tau = tdc_.measure_additive(prev_t_dlv_, prev_e_tdc_ - prev_mu_);
  record.delta = config_.setpoint_c - record.tau;
  record.violation = record.tau < config_.setpoint_c;

  // Controller / generator.
  double lro_now = prev_lro_;
  switch (config_.mode) {
    case GeneratorMode::kControlledRo: {
      const double commanded = control_step(record.delta);
      if (config_.quantize_lro) {
        lro_now = static_cast<double>(
            ro_.set_length(static_cast<std::int64_t>(llround_ties_away(commanded))));
      } else {
        lro_now = std::clamp(commanded,
                             static_cast<double>(config_.min_length),
                             static_cast<double>(config_.max_length));
      }
      break;
    }
    case GeneratorMode::kFreeRunningRo:
    case GeneratorMode::kFixedClock:
      lro_now = config_.open_loop_period.value_or(config_.setpoint_c);
      break;
  }
  record.lro = lro_now;

  // RO (one-cycle latency on both the length and the local variation, per
  // eq. 5's e(z) z^-1 path).  A fixed clock ignores on-die variation.
  const double e_at_ro =
      config_.mode == GeneratorMode::kFixedClock ? 0.0 : prev_e_ro_;
  record.t_gen = std::max(1.0, prev_lro_ + e_at_ro);

  // CDN.
  record.t_dlv = cdn_.push(record.t_gen);

  // Advance the delay registers.
  prev_lro_ = lro_now;
  prev_t_dlv_ = record.t_dlv;
  prev_e_ro_ = e_ro;
  prev_e_tdc_ = e_tdc;
  prev_mu_ = mu;
  return record;
}

StepRecord LoopSimulator::step(double e_ro, double e_tdc, double mu) {
  return step_impl(e_ro, e_tdc, mu,
                   [this](double delta) { return controller_->step(delta); });
}

SimulationTrace LoopSimulator::run(const SimulationInputs& inputs,
                                   std::size_t n) {
  const double dt = config_.sample_period.value_or(config_.setpoint_c);
  SimulationTrace trace;
  trace.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    trace.push(step(inputs.e_ro(t), inputs.e_tdc(t), inputs.mu(t)));
  }
  return trace;
}

SimulationTrace LoopSimulator::run_batch(const InputBlock& block) {
  const std::size_t n = block.size();
  ROCLK_CHECK(block.e_tdc.size() == n && block.mu.size() == n,
                "ragged input block");
  SimulationTrace trace;
  trace.reserve(n);
  const double* const e_ro = block.e_ro.data();
  const double* const e_tdc = block.e_tdc.data();
  const double* const mu = block.mu.data();
  // The arithmetic is shared with run() via step_impl to keep the two
  // paths bit-identical.  For the common controller the virtual dispatch
  // is hoisted out of the loop: IirControlHardware is final with an inline
  // step(), so the whole datapath fuses into this loop body.
  if (auto* iir =
          dynamic_cast<control::IirControlHardware*>(controller_.get())) {
    for (std::size_t k = 0; k < n; ++k) {
      trace.push(step_impl(e_ro[k], e_tdc[k], mu[k],
                           [iir](double delta) { return iir->step(delta); }));
    }
    return trace;
  }
  for (std::size_t k = 0; k < n; ++k) {
    trace.push(step(e_ro[k], e_tdc[k], mu[k]));
  }
  return trace;
}

LoopSimulator make_iir_system(double setpoint_c, double cdn_delay_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kControlledRo;
  return LoopSimulator{config, std::make_unique<control::IirControlHardware>(
                                   control::paper_iir_config())};
}

LoopSimulator make_teatime_system(double setpoint_c, double cdn_delay_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kControlledRo;
  return LoopSimulator{config,
                       std::make_unique<control::TeaTimeControl>()};
}

LoopSimulator make_free_ro_system(double setpoint_c, double cdn_delay_stages,
                                  double safety_margin_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kFreeRunningRo;
  config.open_loop_period = setpoint_c + safety_margin_stages;
  return LoopSimulator{config, nullptr};
}

LoopSimulator make_fixed_clock_system(double setpoint_c,
                                      double cdn_delay_stages,
                                      double safety_margin_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kFixedClock;
  config.open_loop_period = setpoint_c + safety_margin_stages;
  return LoopSimulator{config, nullptr};
}

}  // namespace roclk::core
