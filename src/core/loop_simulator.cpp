#include "roclk/core/loop_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "roclk/common/math.hpp"
#include "roclk/control/hardened_control.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"

namespace roclk::core {

Status LoopSimulator::validate(const LoopConfig& config, bool has_controller) {
  if (config.setpoint_c <= 0.0) {
    std::ostringstream os;
    os << "set-point must be positive, got c=" << config.setpoint_c;
    return Status::invalid_argument(os.str());
  }
  if (config.cdn_delay_stages < 0.0) {
    std::ostringstream os;
    os << "CDN delay cannot be negative, got t_clk="
       << config.cdn_delay_stages;
    return Status::invalid_argument(os.str());
  }
  if (config.min_length < 1 || config.max_length < config.min_length) {
    std::ostringstream os;
    os << "invalid l_RO range [" << config.min_length << ", "
       << config.max_length << "]: need 1 <= min <= max";
    return Status::invalid_argument(os.str());
  }
  if (config.mode == GeneratorMode::kControlledRo && !has_controller) {
    return Status::invalid_argument("controlled mode requires a controller");
  }
  if (config.open_loop_period && *config.open_loop_period <= 0.0) {
    return Status::invalid_argument("open-loop period must be positive");
  }
  if (config.sample_period && *config.sample_period <= 0.0) {
    return Status::invalid_argument("sample period must be positive");
  }
  if (config.tdc_max_reading && *config.tdc_max_reading < 1) {
    return Status::invalid_argument("TDC max_reading must be >= 1");
  }
  // The loop compares tau against the set-point every cycle; a TDC chain
  // shorter than c saturates below the set-point and could never report
  // "period OK" — a mis-sized chain must fail loudly at construction.
  const auto tdc = detail::tdc_config_for(config);
  if (static_cast<double>(tdc.max_reading) < config.setpoint_c) {
    std::ostringstream os;
    os << "TDC chain too short for the set-point: max_reading="
       << tdc.max_reading << " < c=" << config.setpoint_c;
    return Status::invalid_argument(os.str());
  }
  return Status::ok();
}

namespace detail {

std::size_t cdn_history_for(const LoopConfig& config) {
  return static_cast<std::size_t>(
             std::max(64.0, 8.0 * config.cdn_delay_stages /
                                static_cast<double>(config.min_length))) +
         2;
}

sensor::TdcConfig tdc_config_for(const LoopConfig& config) {
  sensor::TdcConfig tdc;
  tdc.quantization = config.tdc_quantization;
  // Dynamic mu is injected per step instead of via mismatch_stages.
  tdc.max_reading = config.tdc_max_reading.value_or(std::int64_t{1} << 20);
  return tdc;
}

double equilibrium_for(const LoopConfig& config) {
  return config.mode == GeneratorMode::kControlledRo
             ? config.setpoint_c
             : config.open_loop_period.value_or(config.setpoint_c);
}

}  // namespace detail

namespace {

osc::RingOscillatorConfig make_ro_config(const LoopConfig& config) {
  osc::RingOscillatorConfig ro;
  ro.min_length = config.min_length;
  ro.max_length = config.max_length;
  const double initial = config.open_loop_period.value_or(config.setpoint_c);
  ro.initial_length = static_cast<std::int64_t>(llround_ties_away(initial));
  ro.initial_length =
      std::clamp(ro.initial_length, ro.min_length, ro.max_length);
  return ro;
}

}  // namespace

LoopSimulator::LoopSimulator(LoopConfig config,
                             std::unique_ptr<control::ControlBlock> controller)
    : config_{config},
      controller_{std::move(controller)},
      ro_{make_ro_config(config_)},
      cdn_{config_.cdn_delay_stages, detail::cdn_history_for(config_),
           config_.cdn_quantization},
      tdc_{detail::tdc_config_for(config_)} {
  ROCLK_CHECK_OK(validate(config_, controller_ != nullptr));
  reset();
}

void LoopSimulator::set_setpoint(double setpoint_c) {
  ROCLK_CHECK(setpoint_c > 0.0,
              "set-point must be positive, got c=" << setpoint_c);
  ROCLK_CHECK(static_cast<double>(tdc_.config().max_reading) >= setpoint_c,
              "TDC chain too short for the new set-point: max_reading="
                  << tdc_.config().max_reading << " < c=" << setpoint_c);
  config_.setpoint_c = setpoint_c;
}

void LoopSimulator::attach_faults(const fault::FaultSchedule& schedule) {
  injector_.emplace(schedule);
}

void LoopSimulator::clear_faults() { injector_.reset(); }

void LoopSimulator::reset() {
  const double equilibrium = detail::equilibrium_for(config_);
  if (controller_) controller_->reset(equilibrium);
  ro_.set_length(static_cast<std::int64_t>(llround_ties_away(equilibrium)));
  cdn_.reset(equilibrium);
  prev_lro_ = equilibrium;
  prev_t_dlv_ = equilibrium;
  prev_e_ro_ = 0.0;
  prev_e_tdc_ = 0.0;
  prev_mu_ = 0.0;
  if (injector_) injector_->reset();
  cycle_ = 0;
  isolated_ = false;
  frozen_ = StepRecord{};
}

template <typename ControlFn>
StepRecord LoopSimulator::step_impl(double e_ro, double e_tdc, double mu,
                                    ControlFn&& control_step) {
  if (isolated_) {
    // Once isolated the loop is frozen: the last good record repeats so a
    // poisoned signal can never reach downstream metrics.
    ++cycle_;
    return frozen_;
  }
  fault::CycleFaults faults;
  if (injector_) faults = injector_->begin_cycle(cycle_);
  ++cycle_;

  StepRecord record;

  // TDC (one-cycle latency): measure the period delivered last cycle under
  // last cycle's local conditions.
  // tau = quantise(T_dlv - e_tdc + mu): fold mu into the additive reading.
  record.tau = tdc_.measure_additive(prev_t_dlv_, prev_e_tdc_ - prev_mu_);
  // Violation is judged on the TRUE reading, before any sensor fault: a
  // corrupted mux changes what the controller sees, not whether timing was
  // actually met on the die.
  record.violation = record.tau < config_.setpoint_c;
  if (faults.any) {
    // Sensor-mux faults (precedence resolved by the injector).  A faulted
    // reading still passes through the chain's physical saturation.
    const auto max_reading =
        static_cast<double>(tdc_.config().max_reading);
    if (faults.tau_stuck) {
      record.tau = std::clamp(faults.tau_stuck_value, 0.0, max_reading);
    } else if (faults.tau_dropped) {
      record.tau = 0.0;  // the capture register missed the edge
    } else if (faults.tau_glitch != 0.0) {
      record.tau =
          std::clamp(record.tau + faults.tau_glitch, 0.0, max_reading);
    }
  }
  record.delta = config_.setpoint_c - record.tau;

  // Controller / generator.
  double lro_now = prev_lro_;
  switch (config_.mode) {
    case GeneratorMode::kControlledRo: {
      const double commanded = control_step(record.delta);
      if (config_.quantize_lro) {
        lro_now = static_cast<double>(
            ro_.set_length(static_cast<std::int64_t>(llround_ties_away(commanded))));
      } else {
        lro_now = std::clamp(commanded,
                             static_cast<double>(config_.min_length),
                             static_cast<double>(config_.max_length));
      }
      break;
    }
    case GeneratorMode::kFreeRunningRo:
    case GeneratorMode::kFixedClock:
      lro_now = config_.open_loop_period.value_or(config_.setpoint_c);
      break;
  }
  record.lro = lro_now;

  // RO (one-cycle latency on both the length and the local variation, per
  // eq. 5's e(z) z^-1 path).  A fixed clock ignores on-die variation.
  // An active stage failure steps the l_RO -> period mapping.
  const double e_at_ro =
      config_.mode == GeneratorMode::kFixedClock ? 0.0 : prev_e_ro_;
  double t_gen = prev_lro_ + e_at_ro;
  if (faults.any && faults.ro_offset != 0.0) t_gen += faults.ro_offset;
  record.t_gen = std::max(1.0, t_gen);

  // CDN.  A delivery drop swallows the leaf edge: the registers observe a
  // doubled period this cycle, while the tree's pipeline is unaffected.
  record.t_dlv = cdn_.push(record.t_gen);
  if (faults.any && faults.cdn_drop) record.t_dlv *= 2.0;

  // Advance the delay registers.  A supply droop slows the whole die: both
  // the RO and the TDC chain see the extra stages next cycle.
  prev_lro_ = lro_now;
  prev_t_dlv_ = record.t_dlv;
  prev_e_ro_ = e_ro;
  prev_e_tdc_ = e_tdc;
  prev_mu_ = mu;
  if (faults.any && faults.droop != 0.0) {
    prev_e_ro_ += faults.droop;
    prev_e_tdc_ += faults.droop;
  }

  if (injector_) {
    // Lane isolation: faulted dynamics must degrade, never poison.  A
    // non-physical signal freezes the loop at the last good record.
    if (!std::isfinite(record.tau) || !std::isfinite(record.t_dlv) ||
        record.t_dlv <= 0.0) {
      isolated_ = true;
      return frozen_;
    }
    frozen_ = record;
  }
  return record;
}

StepRecord LoopSimulator::step(double e_ro, double e_tdc, double mu) {
  return step_impl(e_ro, e_tdc, mu,
                   [this](double delta) { return controller_->step(delta); });
}

SimulationTrace LoopSimulator::run(const SimulationInputs& inputs,
                                   std::size_t n) {
  const double dt = config_.sample_period.value_or(config_.setpoint_c);
  SimulationTrace trace;
  trace.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    trace.push(step(inputs.e_ro(t), inputs.e_tdc(t), inputs.mu(t)));
  }
  return trace;
}

SimulationTrace LoopSimulator::run_batch(const InputBlock& block) {
  const std::size_t n = block.size();
  ROCLK_CHECK(block.e_tdc.size() == n && block.mu.size() == n,
                "ragged input block");
  SimulationTrace trace;
  trace.reserve(n);
  const double* const e_ro = block.e_ro.data();
  const double* const e_tdc = block.e_tdc.data();
  const double* const mu = block.mu.data();
  // The arithmetic is shared with run() via step_impl to keep the two
  // paths bit-identical.  For the common controller the virtual dispatch
  // is hoisted out of the loop: IirControlHardware is final with an inline
  // step(), so the whole datapath fuses into this loop body.
  if (auto* iir =
          dynamic_cast<control::IirControlHardware*>(controller_.get())) {
    for (std::size_t k = 0; k < n; ++k) {
      trace.push(step_impl(e_ro[k], e_tdc[k], mu[k],
                           [iir](double delta) { return iir->step(delta); }));
    }
    return trace;
  }
  for (std::size_t k = 0; k < n; ++k) {
    trace.push(step(e_ro[k], e_tdc[k], mu[k]));
  }
  return trace;
}

LoopSimulator make_iir_system(double setpoint_c, double cdn_delay_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kControlledRo;
  return LoopSimulator{config, std::make_unique<control::IirControlHardware>(
                                   control::paper_iir_config())};
}

LoopSimulator make_hardened_iir_system(double setpoint_c,
                                       double cdn_delay_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kControlledRo;

  control::HardenedConfig hardened;
  hardened.setpoint_c = setpoint_c;
  // Degraded command: the slowest clock the RO can make always meets
  // timing, so it is the safe park position.
  hardened.safe_lro = static_cast<double>(config.max_length);
  // Plausibility bounds scale with the operating point: a locked loop
  // reads tau ~ c, and die time constants bound the per-cycle slew.
  hardened.guard.tau_min = 0.5 * setpoint_c;
  hardened.guard.tau_max = 2.0 * setpoint_c;
  hardened.guard.max_step = std::max(4.0, 0.25 * setpoint_c);
  hardened.watchdog.delta_bound = std::max(4.0, 0.25 * setpoint_c);
  hardened.watchdog.relock_bound = 2.0;
  // Fast detection: the guard's z^-1 means the inner IIR only reacts to a
  // resynced fault one cycle late, so resync + 2 trip cycles snap the loop
  // to the safe park before a corrupted reading can move l_RO.
  hardened.guard.hold_limit = 2;
  hardened.watchdog.trip_cycles = 2;

  auto controller = control::make_hardened_iir(
      control::paper_iir_config(), hardened,
      static_cast<double>(config.min_length),
      static_cast<double>(config.max_length));
  return LoopSimulator{config, std::move(controller)};
}

LoopSimulator make_teatime_system(double setpoint_c, double cdn_delay_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kControlledRo;
  return LoopSimulator{config,
                       std::make_unique<control::TeaTimeControl>()};
}

LoopSimulator make_free_ro_system(double setpoint_c, double cdn_delay_stages,
                                  double safety_margin_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kFreeRunningRo;
  config.open_loop_period = setpoint_c + safety_margin_stages;
  return LoopSimulator{config, nullptr};
}

LoopSimulator make_fixed_clock_system(double setpoint_c,
                                      double cdn_delay_stages,
                                      double safety_margin_stages) {
  LoopConfig config;
  config.setpoint_c = setpoint_c;
  config.cdn_delay_stages = cdn_delay_stages;
  config.mode = GeneratorMode::kFixedClock;
  config.open_loop_period = setpoint_c + safety_margin_stages;
  return LoopSimulator{config, nullptr};
}

}  // namespace roclk::core
