// Vectorized per-chunk ensemble kernel, templated over a SIMD backend.
//
// This internal header is instantiated once per compiled backend
// (ensemble_kernel_{scalar,avx2,neon}.cpp); EnsembleSimulator dispatches a
// chunk here when the chunk is SIMD-eligible: fault-free (or armed with an
// all-empty schedule set), running either an open-loop generator or the
// devirtualized IIR bank, with its static magnitudes inside the exact
// int<->double conversion domain (see EnsembleSimulator::kSimdMaxMagnitude).
// Everything else — per-lane virtual controllers, chunks with pending fault
// events, out-of-domain configs — keeps the scalar reference kernel, which
// preserves PR 4's bit-for-bit fault replay unchanged.
//
// Bit-exactness argument (gated by tests/core/test_ensemble_simd):
//  * Lanes are arithmetically independent; vectorizing ACROSS lanes only
//    changes which instruction computes a lane, never its operand values.
//  * Every floating-point step is the same IEEE-754 operation, in the same
//    order, as the scalar reference (correctly-rounded add/sub/mul/div,
//    directed-rounding floor/trunc).  min/max/clamp are composed from
//    cmp+select in the exact std::min/std::max/std::clamp selection order,
//    so -0.0 and equal-value selections match bitwise.  No FMA contraction
//    is ever emitted (plain intrinsics; -ffp-contract=off project-wide).
//  * Integer IIR-bank steps are exact by definition; the AVX2 arithmetic
//    right shift is rebuilt from logical shift + sign fill.
//  * double->int64 casts use each backend's exact conversion, valid for
//    the guarded magnitude domain (< 2^51); the CDN look-back's per-lane
//    variable ring indexing runs scalar on extracted lane values — the
//    same values the vector computed, so the same results.
//  * Lane widths not divisible by the vector width run the SAME templated
//    cycle body instantiated at width 1 (ScalarTraits<1>) — the masked
//    scalar tail shares one source of truth with the vector path.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "roclk/cdn/cdn.hpp"
#include "roclk/common/check.hpp"
#include "roclk/common/fixed_point.hpp"
#include "roclk/common/simd.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/sensor/tdc.hpp"

namespace roclk::core::detail {

/// Devirtualized IIR bank parameters for the vector kernel (mirrors
/// EnsembleSimulator's cached IirControlHardware configuration).
struct SimdIirArgs {
  const PowerOfTwoGain* tap_gains{nullptr};
  std::size_t taps{0};
  PowerOfTwoGain k_exp_gain;
  PowerOfTwoGain k_star_gain;
  std::int64_t* prev_input{nullptr};
  std::int64_t* bank{nullptr};  // [tap * cw + w]
  std::size_t* head{nullptr};   // in/out: physical row holding W[n-1]
  bool integral_input{false};
  bool aw_enabled{false};
  std::int64_t aw_min{0};
  std::int64_t aw_max{0};
};

/// Raw-pointer view of one chunk plus the ensemble-level constants the
/// kernel needs; assembled by EnsembleSimulator::run_one_chunk.
struct SimdChunkArgs {
  // Geometry.
  std::size_t first{0};   // chunk's first lane (slice labelling)
  std::size_t cw{0};      // chunk width
  std::size_t cycles{0};  // cycles to run
  std::size_t stride{0};  // input block lane stride (= block.width)

  // Input block base pointers (cycle-major, lane-interleaved).
  const double* e_ro{nullptr};
  const double* e_tdc{nullptr};
  const double* mu{nullptr};

  // z^-1 delay registers and per-lane constants.
  double* prev_lro{nullptr};
  double* prev_t_dlv{nullptr};
  double* prev_e_ro{nullptr};
  double* prev_e_local{nullptr};
  const double* setpoint{nullptr};
  const double* open_loop{nullptr};
  const std::int64_t* min_len{nullptr};
  const std::int64_t* max_len{nullptr};
  const double* min_len_d{nullptr};
  const double* max_len_d{nullptr};

  // Interleaved CDN ring.
  double* ring{nullptr};
  std::size_t slot_mask{0};
  const double* cdn_delay{nullptr};
  const double* cdn_history_d{nullptr};
  const std::uint64_t* cdn_history{nullptr};
  const double* cdn_initial{nullptr};
  std::uint64_t* pushes{nullptr};  // in/out: absolute push counter

  // Per-cycle staging handed to the reducer.
  double* out_tau{nullptr};
  double* out_delta{nullptr};
  double* out_lro{nullptr};
  double* out_t_gen{nullptr};
  double* out_t_dlv{nullptr};
  std::uint8_t* out_violation{nullptr};

  // Mode flags and TDC constants (uniform across lanes, validated).
  bool fixed_clock{false};
  bool quantize_lro{true};
  sensor::Quantization tdc_q{sensor::Quantization::kNearest};
  cdn::DelayQuantization cdn_q{cdn::DelayQuantization::kRound};
  double tdc_mismatch{0.0};
  double tdc_max{0.0};

  // Controller: the devirtualized IIR bank, or open-loop when inactive.
  bool use_iir_bank{false};
  SimdIirArgs iir;

  // Streaming sink.
  StreamingReducer* reducer{nullptr};
  bool full_slice{true};
  // Slice isolation mask for a fault-armed ensemble whose chunk has no
  // events (all zeros by construction); nullptr on a fault-free run.
  const std::uint8_t* isolated_flags{nullptr};
};

/// Backend entry points.  Each is defined in its ensemble_kernel_*.cpp TU;
/// the avx2/neon ones exist only when the matching ROCLK_SIMD_HAVE_* macro
/// is set (EnsembleSimulator never dispatches to an uncompiled backend).
void run_chunk_simd_scalar(const SimdChunkArgs& args);
void run_chunk_simd_avx2(const SimdChunkArgs& args);
void run_chunk_simd_neon(const SimdChunkArgs& args);

// ----------------------------------------------------------------------
// Generic implementation.

/// PowerOfTwoGain::apply on a lane vector: shift, then optional negate.
template <class T>
inline typename T::I apply_gain(typename T::I x, const PowerOfTwoGain& gain) {
  const typename T::I shifted = T::ishift_signed(x, gain.exponent());
  return gain.negative() ? T::ineg(shifted) : shifted;
}

/// std::clamp(v, lo, hi) composed from cmp + select in std::clamp's exact
/// selection order: v < lo ? lo : (hi < v ? hi : v).
template <class T>
inline typename T::D dclamp(typename T::D v, typename T::D lo,
                            typename T::D hi) {
  v = T::select(T::cmp_lt(hi, v), hi, v);
  return T::select(T::cmp_lt(v, lo), lo, v);
}

template <class T>
inline typename T::I iclamp(typename T::I v, typename T::I lo,
                            typename T::I hi) {
  v = T::iselect(T::icmp_lt(hi, v), hi, v);
  return T::iselect(T::icmp_lt(v, lo), lo, v);
}

/// One simulated cycle for the V::kWidth lanes starting at chunk offset w.
/// Mirrors EnsembleSimulator::run_chunk's fault-free lane body statement by
/// statement; see that kernel for the semantics of each step.
template <class V, sensor::Quantization TdcQ, cdn::DelayQuantization CdnQ,
          bool kBank>
inline void simd_cycle_lanes(const SimdChunkArgs& a, std::size_t w,
                             const double* e_ro_row, const double* e_tdc_row,
                             const double* mu_row, std::uint64_t pos,
                             std::int64_t* const* rows) {
  using D = typename V::D;
  using I [[maybe_unused]] = typename V::I;
  constexpr std::size_t W = V::kWidth;

  // TDC (one-cycle latency): tau = quantize(prev_t_dlv - e_local + mism),
  // clamped to [0, max_reading].
  const D prev_t_dlv = V::load(a.prev_t_dlv + w);
  const D zero = V::broadcast(0.0);
  if (V::mask_bits(V::cmp_lt(zero, prev_t_dlv)) != (1u << W) - 1u) {
    for (std::size_t j = 0; j < W; ++j) {
      ROCLK_CHECK(a.prev_t_dlv[w + j] > 0.0,
                  "delivered period must be positive, got "
                      << a.prev_t_dlv[w + j] << " stages (lane "
                      << a.first + w + j << ")");
    }
  }
  const D e_local = V::load(a.prev_e_local + w);
  const D raw =
      V::add(V::sub(prev_t_dlv, e_local), V::broadcast(a.tdc_mismatch));
  D tau;
  if constexpr (TdcQ == sensor::Quantization::kFloor) {
    tau = V::floor(raw);
  } else if constexpr (TdcQ == sensor::Quantization::kNearest) {
    tau = V::round_ties_away(raw);
  } else {
    tau = raw;
  }
  tau = dclamp<V>(tau, zero, V::broadcast(a.tdc_max));

  const D setpoint = V::load(a.setpoint + w);
  const unsigned viol_bits = V::mask_bits(V::cmp_lt(tau, setpoint));
  const D delta = V::sub(setpoint, tau);

  // Controller / generator.
  D lro_now;
  if constexpr (kBank) {
    // IirBankControl::step on a lane-vector: feedback taps, shift-scaled
    // state update, anti-windup back-write — all exact integer arithmetic.
    const SimdIirArgs& iir = a.iir;
    I feedback = V::ibroadcast(0);
    for (std::size_t i = 0; i < iir.taps; ++i) {
      feedback =
          V::iadd(feedback, apply_gain<V>(V::iload(rows[i] + w),
                                          iir.tap_gains[i]));
    }
    const I acc = V::iadd(apply_gain<V>(V::iload(iir.prev_input + w),
                                        iir.k_exp_gain),
                          feedback);
    const I state = apply_gain<V>(acc, iir.k_star_gain);
    const I next_input =
        iir.integral_input ? V::to_int_exact(delta)
                           : V::to_int_exact(V::round_ties_away(delta));
    V::istore(iir.prev_input + w, next_input);
    const I y = V::ishift_signed(state, -iir.k_exp_gain.exponent());
    I new_row = state;
    if (iir.aw_enabled) {
      const I bounded = iclamp<V>(y, V::ibroadcast(iir.aw_min),
                                  V::ibroadcast(iir.aw_max));
      // Scalar: `if (bounded != y) row = k_exp.apply(bounded)`; y itself
      // stays unbounded (the l_RO clamp below is the output limiter).
      new_row = V::iselect(V::icmp_eq(bounded, y), state,
                           apply_gain<V>(bounded, iir.k_exp_gain));
    }
    V::istore(rows[iir.taps - 1] + w, new_row);
    // Quantize: the scalar path computes commanded = double(y), then casts
    // back.  Inside the exact conversion window |y| < 2^51 that round trip
    // is the identity, so the vector path keeps y; a diverged loop can push
    // y outside the window, where double(y) rounds — those (rare) vectors
    // replay the scalar round trip lane by lane, bit for bit.
    constexpr std::int64_t kWindow = std::int64_t{1} << 51;
    const unsigned in_window =
        V::imask_bits(V::icmp_lt(y, V::ibroadcast(kWindow))) &
        V::imask_bits(V::icmp_lt(V::ibroadcast(-kWindow), y));
    if (in_window == (1u << W) - 1u) {
      if (a.quantize_lro) {
        const I length =
            iclamp<V>(y, V::iload(a.min_len + w), V::iload(a.max_len + w));
        lro_now = V::to_double_exact(length);
      } else {
        lro_now = dclamp<V>(V::to_double_exact(y), V::load(a.min_len_d + w),
                            V::load(a.max_len_d + w));
      }
    } else {
      std::int64_t y_lanes[W];
      V::istore(y_lanes, y);
      double lro_lanes[W];
      for (std::size_t j = 0; j < W; ++j) {
        const double commanded = static_cast<double>(y_lanes[j]);
        if (a.quantize_lro) {
          const auto length = static_cast<std::int64_t>(commanded);
          lro_lanes[j] = static_cast<double>(
              std::clamp(length, a.min_len[w + j], a.max_len[w + j]));
        } else {
          lro_lanes[j] =
              std::clamp(commanded, a.min_len_d[w + j], a.max_len_d[w + j]);
        }
      }
      lro_now = V::load(lro_lanes);
    }
  } else {
    lro_now = V::load(a.open_loop + w);
  }

  // RO (one-cycle latency): t_gen = max(1.0, prev_lro + e_at_ro), with
  // std::max's exact selection order (1.0 < raw ? raw : 1.0).
  const D e_at_ro =
      a.fixed_clock ? zero : V::load(a.prev_e_ro + w);
  const D t_gen_raw = V::add(V::load(a.prev_lro + w), e_at_ro);
  const D one = V::broadcast(1.0);
  const D t_gen = V::select(V::cmp_lt(one, t_gen_raw), t_gen_raw, one);

  // CDN push into the interleaved ring (lane-contiguous: vector store).
  V::store(a.ring + (pos & a.slot_mask) * a.cw + w, t_gen);

  // d = std::min(cdn_delay / t_gen, history_d): b < a ? b : a.
  const D quotient = V::div(V::load(a.cdn_delay + w), t_gen);
  const D history_d = V::load(a.cdn_history_d + w);
  const D d =
      V::select(V::cmp_lt(history_d, quotient), history_d, quotient);

  // Quantised look-back: the ring slot varies per lane, so this step runs
  // scalar over the extracted lane values of d — the same doubles the
  // vector computed, through the same scalar ops as the reference kernel.
  double d_lanes[W];
  V::store(d_lanes, d);
  double t_dlv_lanes[W];
  for (std::size_t j = 0; j < W; ++j) {
    const std::size_t lane = w + j;
    const double dj = d_lanes[j];
    const auto look_back = [&](std::uint64_t m) -> double {
      if (m >= a.cdn_history[lane] || m > pos) return a.cdn_initial[lane];
      return a.ring[((pos - m) & a.slot_mask) * a.cw + lane];
    };
    double t_dlv;
    if constexpr (CdnQ == cdn::DelayQuantization::kRound) {
      t_dlv =
          look_back(static_cast<std::uint64_t>(llround_ties_away(dj)));
    } else if constexpr (CdnQ == cdn::DelayQuantization::kFloor) {
      t_dlv = look_back(static_cast<std::uint64_t>(std::floor(dj)));
    } else {
      const auto m0 = static_cast<std::uint64_t>(std::floor(dj));
      const double frac = dj - std::floor(dj);
      const double v0 = look_back(m0);
      if (frac == 0.0) {
        t_dlv = v0;
      } else {
        const double v1 = look_back(m0 + 1);
        t_dlv = v0 * (1.0 - frac) + v1 * frac;
      }
    }
    t_dlv_lanes[j] = t_dlv;
  }
  const D t_dlv = V::load(t_dlv_lanes);

  // Stage the cycle's results and advance the z^-1 registers.
  V::store(a.out_tau + w, tau);
  V::store(a.out_delta + w, delta);
  if (a.full_slice) {
    V::store(a.out_lro + w, lro_now);
    V::store(a.out_t_gen + w, t_gen);
  }
  V::store(a.out_t_dlv + w, t_dlv);
  for (std::size_t j = 0; j < W; ++j) {
    a.out_violation[w + j] = static_cast<std::uint8_t>((viol_bits >> j) & 1u);
  }
  V::store(a.prev_lro + w, lro_now);
  V::store(a.prev_t_dlv + w, t_dlv);
  V::store(a.prev_e_ro + w, V::load(e_ro_row + w));
  V::store(a.prev_e_local + w,
           V::sub(V::load(e_tdc_row + w), V::load(mu_row + w)));
}

/// Full chunk run at one (TdcQ, CdnQ, controller) combination: vector
/// groups of T::kWidth lanes plus a width-1 tail from the same body.
template <class T, sensor::Quantization TdcQ, cdn::DelayQuantization CdnQ,
          bool kBank>
void run_chunk_simd_typed(const SimdChunkArgs& a) {
  constexpr std::size_t W = T::kWidth;
  const std::size_t cw = a.cw;
  const std::size_t vector_end = cw - cw % W;

  // Newest-first tap-row pointer ring (see IirBankControl): rotated once
  // per cycle so the shift register advances without per-lane moves.
  std::vector<std::int64_t*> rows;
  if constexpr (kBank) {
    rows.resize(a.iir.taps);
    for (std::size_t i = 0; i < a.iir.taps; ++i) {
      rows[i] = a.iir.bank + ((*a.iir.head + i) % a.iir.taps) * cw;
    }
  }

  LaneSlice slice;
  slice.first_lane = a.first;
  slice.width = cw;
  slice.tau = a.out_tau;
  slice.delta = a.out_delta;
  slice.lro = a.out_lro;
  slice.t_gen = a.out_t_gen;
  slice.t_dlv = a.out_t_dlv;
  slice.violation = a.out_violation;
  slice.isolated = a.isolated_flags;

  std::uint64_t pos = *a.pushes;
  for (std::size_t k = 0; k < a.cycles; ++k) {
    const double* e_ro_row = a.e_ro + k * a.stride + a.first;
    const double* e_tdc_row = a.e_tdc + k * a.stride + a.first;
    const double* mu_row = a.mu + k * a.stride + a.first;
    for (std::size_t w = 0; w < vector_end; w += W) {
      simd_cycle_lanes<T, TdcQ, CdnQ, kBank>(a, w, e_ro_row, e_tdc_row,
                                             mu_row, pos, rows.data());
    }
    for (std::size_t w = vector_end; w < cw; ++w) {
      simd_cycle_lanes<simd::ScalarTraits<1>, TdcQ, CdnQ, kBank>(
          a, w, e_ro_row, e_tdc_row, mu_row, pos, rows.data());
    }
    if constexpr (kBank) {
      std::rotate(rows.begin(), rows.end() - 1, rows.end());
    }
    ++pos;

    slice.cycle = k;
    a.reducer->accumulate(slice);
  }
  *a.pushes = pos;
  if constexpr (kBank) {
    *a.iir.head = static_cast<std::size_t>(rows[0] - a.iir.bank) / cw;
  }
}

/// Runtime-to-compile-time dispatch of the quantization modes and the
/// controller kind, mirroring EnsembleSimulator's scalar dispatch cascade.
template <class T, sensor::Quantization TdcQ, cdn::DelayQuantization CdnQ>
void dispatch_simd_control(const SimdChunkArgs& a) {
  if (a.use_iir_bank) {
    run_chunk_simd_typed<T, TdcQ, CdnQ, true>(a);
  } else {
    run_chunk_simd_typed<T, TdcQ, CdnQ, false>(a);
  }
}

template <class T, sensor::Quantization TdcQ>
void dispatch_simd_cdn(const SimdChunkArgs& a) {
  switch (a.cdn_q) {
    case cdn::DelayQuantization::kRound:
      dispatch_simd_control<T, TdcQ, cdn::DelayQuantization::kRound>(a);
      break;
    case cdn::DelayQuantization::kFloor:
      dispatch_simd_control<T, TdcQ, cdn::DelayQuantization::kFloor>(a);
      break;
    case cdn::DelayQuantization::kLinearInterp:
      dispatch_simd_control<T, TdcQ, cdn::DelayQuantization::kLinearInterp>(
          a);
      break;
  }
}

template <class T>
void run_chunk_simd_impl(const SimdChunkArgs& a) {
  switch (a.tdc_q) {
    case sensor::Quantization::kFloor:
      dispatch_simd_cdn<T, sensor::Quantization::kFloor>(a);
      break;
    case sensor::Quantization::kNearest:
      dispatch_simd_cdn<T, sensor::Quantization::kNearest>(a);
      break;
    case sensor::Quantization::kNone:
      dispatch_simd_cdn<T, sensor::Quantization::kNone>(a);
      break;
  }
}

}  // namespace roclk::core::detail
