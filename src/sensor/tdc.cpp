#include "roclk/sensor/tdc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace roclk::sensor {

Status Tdc::validate(const TdcConfig& config) {
  if (config.max_reading < 1) {
    return Status::invalid_argument("max_reading must be >= 1");
  }
  if (config.relative_mismatch <= -1.0) {
    return Status::invalid_argument(
        "relative mismatch must keep stage delay positive");
  }
  return Status::ok();
}

Tdc::Tdc(TdcConfig config) : config_{config} {
  ROCLK_CHECK_OK(validate(config_));
}

double Tdc::measure_physical(double delivered_period, double v_local) const {
  ROCLK_CHECK(delivered_period > 0.0,
              "delivered period must be positive, got " << delivered_period
                                                        << " stages");
  const double stage_scale =
      (1.0 + v_local) * (1.0 + config_.relative_mismatch);
  ROCLK_CHECK(stage_scale > 0.0,
              "variation drove stage delay non-positive: v_local="
                  << v_local << ", relative_mismatch="
                  << config_.relative_mismatch << " give scale "
                  << stage_scale);
  return quantize(delivered_period / stage_scale);
}

TdcArray::TdcArray(std::vector<Tdc> sensors) : sensors_{std::move(sensors)} {}

TdcArray& TdcArray::add(Tdc tdc) {
  sensors_.push_back(std::move(tdc));
  return *this;
}

TdcArray TdcArray::make_grid(std::size_t grid, double mismatch_stages) {
  ROCLK_CHECK(grid >= 1, "grid must be at least 1x1, got " << grid);
  TdcArray array;
  for (std::size_t ix = 0; ix < grid; ++ix) {
    for (std::size_t iy = 0; iy < grid; ++iy) {
      TdcConfig cfg;
      cfg.location = {
          (static_cast<double>(ix) + 0.5) / static_cast<double>(grid),
          (static_cast<double>(iy) + 0.5) / static_cast<double>(grid)};
      cfg.mismatch_stages = mismatch_stages;
      array.add(Tdc{cfg});
    }
  }
  return array;
}

double TdcArray::worst_additive(double delivered_period,
                                double e_local) const {
  ROCLK_CHECK(!sensors_.empty(), "empty TDC array");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& tdc : sensors_) {
    worst = std::min(worst, tdc.measure_additive(delivered_period, e_local));
  }
  return worst;
}

double TdcArray::worst_physical(double delivered_period,
                                const variation::VariationSource& source,
                                double t) const {
  ROCLK_CHECK(!sensors_.empty(), "empty TDC array");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& tdc : sensors_) {
    const double v = tdc.local_variation(source, t);
    worst = std::min(worst, tdc.measure_physical(delivered_period, v));
  }
  return worst;
}

std::vector<double> TdcArray::readings_physical(
    double delivered_period, const variation::VariationSource& source,
    double t) const {
  std::vector<double> out;
  out.reserve(sensors_.size());
  for (const auto& tdc : sensors_) {
    out.push_back(
        tdc.measure_physical(delivered_period, tdc.local_variation(source, t)));
  }
  return out;
}

}  // namespace roclk::sensor
