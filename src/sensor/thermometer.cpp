#include "roclk/sensor/thermometer.hpp"

#include <algorithm>

namespace roclk::sensor {

ThermometerCode::ThermometerCode(std::vector<bool> bits)
    : bits_{std::move(bits)} {}

ThermometerCode ThermometerCode::ideal(std::size_t count,
                                       std::size_t length) {
  ROCLK_CHECK(count <= length, "count exceeds code length");
  std::vector<bool> bits(length, false);
  std::fill(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(count),
            true);
  return ThermometerCode{std::move(bits)};
}

bool ThermometerCode::is_clean() const {
  bool seen_zero = false;
  for (bool b : bits_) {
    if (!b) {
      seen_zero = true;
    } else if (seen_zero) {
      return false;
    }
  }
  return true;
}

std::size_t ThermometerCode::bubble_count() const {
  const std::size_t ones = decode_ones_count();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    const bool expected = i < ones;
    if (bits_[i] != expected) ++mismatches;
  }
  return mismatches;
}

std::size_t ThermometerCode::decode_priority() const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (!bits_[i]) return i;
  }
  return bits_.size();
}

std::size_t ThermometerCode::decode_ones_count() const {
  return static_cast<std::size_t>(
      std::count(bits_.begin(), bits_.end(), true));
}

void ThermometerCode::inject_boundary_noise(Xoshiro256& rng, double p,
                                            std::size_t radius) {
  ROCLK_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  if (bits_.empty() || p == 0.0) return;
  const std::size_t boundary = decode_priority();
  const std::size_t lo =
      boundary > radius ? boundary - radius : 0;
  const std::size_t hi = std::min(bits_.size(), boundary + radius);
  for (std::size_t i = lo; i < hi; ++i) {
    if (rng.uniform() < p) bits_[i] = !bits_[i];
  }
}

DetailedTdc::DetailedTdc(DetailedTdcConfig config)
    : config_{config}, chain_{config.chain}, rng_{config.seed} {
  ROCLK_CHECK(config_.metastability_p >= 0.0 &&
                    config_.metastability_p <= 1.0,
                "metastability probability out of range");
}

std::int64_t DetailedTdc::measure(double delivered_period,
                                  const variation::VariationSource& source,
                                  double t) {
  ROCLK_CHECK(delivered_period > 0.0, "period must be positive");
  const std::size_t crossed =
      chain_.stages_crossed(delivered_period, source, t);
  last_ = ThermometerCode::ideal(crossed, chain_.size());
  if (config_.metastability_p > 0.0) {
    last_.inject_boundary_noise(rng_, config_.metastability_p,
                                config_.metastability_radius);
  }
  switch (config_.decoder) {
    case TdcDecoder::kPriorityEncoder:
      return static_cast<std::int64_t>(last_.decode_priority());
    case TdcDecoder::kOnesCount:
      return static_cast<std::int64_t>(last_.decode_ones_count());
  }
  ROCLK_CHECK(false, "unknown decoder");
  return 0;
}

}  // namespace roclk::sensor
