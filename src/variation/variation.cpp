#include "roclk/variation/variation.hpp"

#include <vector>

#include "roclk/common/stats.hpp"
#include "roclk/common/status.hpp"

namespace roclk::variation {

MeasuredClassification classify(const VariationSource& source,
                                const ClassificationOptions& options) {
  ROCLK_CHECK(options.time_samples >= 2, "need at least two time samples");
  ROCLK_CHECK(options.grid >= 2, "need at least a 2x2 spatial grid");
  ROCLK_CHECK(options.t_end > options.t_begin, "empty time range");

  const double dt = (options.t_end - options.t_begin) /
                    static_cast<double>(options.time_samples - 1);

  RunningStats spatial_mean_over_time;  // accumulates the per-time mean
  std::vector<double> spatial_means;
  spatial_means.reserve(options.time_samples);
  RunningStats spatial_stddev_accumulator;

  for (std::size_t k = 0; k < options.time_samples; ++k) {
    const double t = options.t_begin + static_cast<double>(k) * dt;
    RunningStats over_space;
    for (std::size_t ix = 0; ix < options.grid; ++ix) {
      for (std::size_t iy = 0; iy < options.grid; ++iy) {
        const DiePoint p{
            (static_cast<double>(ix) + 0.5) / static_cast<double>(options.grid),
            (static_cast<double>(iy) + 0.5) /
                static_cast<double>(options.grid)};
        over_space.add(source.at(t, p));
      }
    }
    spatial_means.push_back(over_space.mean());
    spatial_stddev_accumulator.add(over_space.stddev());
  }

  RunningStats temporal;
  for (double m : spatial_means) temporal.add(m);

  MeasuredClassification result;
  result.temporal_stddev = temporal.stddev();
  result.spatial_stddev = spatial_stddev_accumulator.mean();
  result.temporal = result.temporal_stddev > options.threshold
                        ? TemporalClass::kDynamic
                        : TemporalClass::kStatic;
  result.spatial = result.spatial_stddev > options.threshold
                       ? SpatialClass::kHeterogeneous
                       : SpatialClass::kHomogeneous;
  return result;
}

}  // namespace roclk::variation
