#include "roclk/variation/scenario.hpp"

#include "roclk/common/stream_key.hpp"

namespace roclk::variation {

std::unique_ptr<VariationSource> make_harmonic_hodv(
    double fractional_amplitude, double period_stages, double phase) {
  return std::make_unique<VrmRipple>(fractional_amplitude, period_stages,
                                     phase);
}

std::unique_ptr<VariationSource> make_single_event_hodv(
    double fractional_amplitude, double start_stages,
    double duration_stages) {
  return std::make_unique<OffChipVoltageDrop>(fractional_amplitude,
                                              start_stages, duration_stages);
}

std::unique_ptr<VariationSource> make_soc_environment(
    const SocEnvironmentConfig& config) {
  // Every mechanism owns a named child of the environment's stream key —
  // the seeds cannot collide and adding a mechanism never shifts another
  // mechanism's draws.
  const StreamKey env = StreamKey{config.seed}.split("variation.soc_env");
  auto composite = std::make_unique<CompositeVariation>();
  composite->add(
      std::make_unique<DieToDieProcess>(config.d2d_sigma, env.split("d2d")));
  composite->add(std::make_unique<WithinDieProcess>(config.wid_sigma,
                                                    env.split("wid")));
  composite->add(std::make_unique<RandomDeviceProcess>(config.rnd_sigma,
                                                       env.split("rnd")));
  composite->add(std::make_unique<VrmRipple>(config.vrm_amplitude,
                                             config.vrm_period));
  composite->add(std::make_unique<SimultaneousSwitchingNoise>(
      config.ssn_sigma, config.ssn_hold, env.split("ssn")));
  composite->add(std::make_unique<TemperatureHotspot>(
      config.hotspot_peak, DiePoint{0.7, 0.3}, 0.2, config.hotspot_onset,
      config.hotspot_tau));
  composite->add(std::make_unique<Aging>(
      config.aging_saturation, config.aging_tau, env.split("aging")));
  return composite;
}

}  // namespace roclk::variation
