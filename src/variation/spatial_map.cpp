#include "roclk/variation/spatial_map.hpp"

#include <cmath>

#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"
#include "roclk/common/stream_key.hpp"

namespace roclk::variation {

SpatialMap::SpatialMap(StreamKey key, double stddev, int cells, int octaves)
    : key_{key}, stddev_{stddev}, cells_{cells}, octaves_{octaves} {
  ROCLK_CHECK(cells >= 1, "need at least one lattice cell");
  ROCLK_CHECK(octaves >= 1, "need at least one octave");
}

SpatialMap::SpatialMap(std::uint64_t seed, double stddev, int cells,
                       int octaves)
    : SpatialMap{StreamKey{seed}.split("variation.spatial_map"), stddev,
                 cells, octaves} {}

double SpatialMap::lattice_value(int octave, int ix, int iy) const {
  // Stateless: every lattice site owns the substream
  // key.at(octave).at(packed coordinate), then maps draws to an
  // approximately standard-normal value via a 4-fold sum of uniforms
  // (Irwin-Hall, variance 4/12 each -> scaled).
  const std::uint64_t coord =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(ix)) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iy)) << 32);
  CounterRng rng{key_.at(static_cast<std::uint64_t>(octave)).at(coord)};
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) acc += rng.uniform() - 0.5;
  // Sum of 4 centred uniforms has variance 4/12 = 1/3; scale to unit.
  return acc * std::sqrt(3.0);
}

double SpatialMap::octave_value(int octave, DiePoint p) const {
  const int cells = cells_ << octave;
  const double fx = p.x * cells;
  const double fy = p.y * cells;
  const int ix = static_cast<int>(std::floor(fx));
  const int iy = static_cast<int>(std::floor(fy));
  const double tx = smoothstep(fx - ix);
  const double ty = smoothstep(fy - iy);
  const double v00 = lattice_value(octave, ix, iy);
  const double v10 = lattice_value(octave, ix + 1, iy);
  const double v01 = lattice_value(octave, ix, iy + 1);
  const double v11 = lattice_value(octave, ix + 1, iy + 1);
  return lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty);
}

double SpatialMap::at(DiePoint p) const {
  double acc = 0.0;
  double amp = 1.0;
  double norm = 0.0;
  for (int o = 0; o < octaves_; ++o) {
    acc += amp * octave_value(o, p);
    norm += amp * amp;
    amp *= 0.5;
  }
  // Normalize so the summed field keeps ~unit variance, then scale.
  return stddev_ * acc / std::sqrt(norm);
}

GaussianBump::GaussianBump(DiePoint centre, double sigma, double peak)
    : centre_{centre}, sigma_{sigma}, peak_{peak} {
  ROCLK_CHECK(sigma > 0.0, "bump sigma must be positive");
}

double GaussianBump::at(DiePoint p) const {
  const double dx = p.x - centre_.x;
  const double dy = p.y - centre_.y;
  return peak_ * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma_ * sigma_));
}

}  // namespace roclk::variation
