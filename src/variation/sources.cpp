#include "roclk/variation/sources.hpp"

#include <cmath>
#include <sstream>

#include "roclk/common/status.hpp"
#include "roclk/common/stream_key.hpp"

namespace roclk::variation {

// ------------------------------------------------------- DieToDieProcess

DieToDieProcess::DieToDieProcess(double sigma, StreamKey key) {
  CounterRng rng{key.split("d2d")};
  offset_ = rng.normal(0.0, sigma);
}

DieToDieProcess::DieToDieProcess(double sigma, std::uint64_t seed)
    : DieToDieProcess{sigma, StreamKey{seed}.split("variation.d2d")} {}

DieToDieProcess DieToDieProcess::with_offset(double offset) {
  return DieToDieProcess{offset};
}

double DieToDieProcess::at(double /*t*/, DiePoint /*p*/) const {
  return offset_;
}

std::unique_ptr<VariationSource> DieToDieProcess::clone() const {
  return std::make_unique<DieToDieProcess>(*this);
}

// ------------------------------------------------------ WithinDieProcess

WithinDieProcess::WithinDieProcess(double sigma, StreamKey key, int cells,
                                   int octaves)
    : map_{key, sigma, cells, octaves} {}

WithinDieProcess::WithinDieProcess(double sigma, std::uint64_t seed,
                                   int cells, int octaves)
    : WithinDieProcess{sigma, StreamKey{seed}.split("variation.wid"), cells,
                       octaves} {}

double WithinDieProcess::at(double /*t*/, DiePoint p) const {
  return map_.at(p);
}

std::unique_ptr<VariationSource> WithinDieProcess::clone() const {
  return std::make_unique<WithinDieProcess>(*this);
}

// --------------------------------------------------- RandomDeviceProcess

RandomDeviceProcess::RandomDeviceProcess(double sigma, StreamKey key,
                                         int buckets)
    : sigma_{sigma}, key_{key}, buckets_{buckets} {
  ROCLK_CHECK(buckets >= 1, "need at least one bucket");
}

RandomDeviceProcess::RandomDeviceProcess(double sigma, std::uint64_t seed,
                                         int buckets)
    : RandomDeviceProcess{sigma, StreamKey{seed}.split("variation.rnd"),
                          buckets} {}

double RandomDeviceProcess::at(double /*t*/, DiePoint p) const {
  // Spatially white: each bucket of the die owns its indexed substream.
  const auto bx = static_cast<std::uint64_t>(p.x * buckets_);
  const auto by = static_cast<std::uint64_t>(p.y * buckets_);
  CounterRng rng{key_.at(bx | (by << 32))};
  return rng.normal(0.0, sigma_);
}

std::unique_ptr<VariationSource> RandomDeviceProcess::clone() const {
  return std::make_unique<RandomDeviceProcess>(*this);
}

// -------------------------------------------------------------- VrmRipple

VrmRipple::VrmRipple(double amplitude, double period, double phase)
    : wave_{amplitude, period, phase},
      amplitude_{amplitude},
      period_{period} {}

double VrmRipple::at(double t, DiePoint /*p*/) const { return wave_.at(t); }

std::unique_ptr<VariationSource> VrmRipple::clone() const {
  return std::make_unique<VrmRipple>(*this);
}

// --------------------------------------------------- RoomTemperatureDrift

RoomTemperatureDrift::RoomTemperatureDrift(double amplitude, double period)
    : wave_{amplitude, period} {}

double RoomTemperatureDrift::at(double t, DiePoint /*p*/) const {
  return wave_.at(t);
}

std::unique_ptr<VariationSource> RoomTemperatureDrift::clone() const {
  return std::make_unique<RoomTemperatureDrift>(*this);
}

// ----------------------------------------------------- OffChipVoltageDrop

OffChipVoltageDrop::OffChipVoltageDrop(double amplitude, double start,
                                       double duration)
    : wave_{amplitude, start, duration} {}

double OffChipVoltageDrop::at(double t, DiePoint /*p*/) const {
  return wave_.at(t);
}

std::unique_ptr<VariationSource> OffChipVoltageDrop::clone() const {
  return std::make_unique<OffChipVoltageDrop>(*this);
}

// ---------------------------------------------- SimultaneousSwitchingNoise

SimultaneousSwitchingNoise::SimultaneousSwitchingNoise(double sigma,
                                                       double hold,
                                                       StreamKey key)
    : noise_{sigma, hold, key.split("noise")},
      profile_{key.split("profile"), 0.5, 3, 2} {}

SimultaneousSwitchingNoise::SimultaneousSwitchingNoise(double sigma,
                                                       double hold,
                                                       std::uint64_t seed)
    : SimultaneousSwitchingNoise{
          sigma, hold, StreamKey{seed}.split("variation.ssn")} {}

double SimultaneousSwitchingNoise::at(double t, DiePoint p) const {
  // Activity profile shifts the local noise amplitude by up to ~50%.
  const double local_gain = 1.0 + profile_.at(p);
  return noise_.at(t) * local_gain;
}

std::unique_ptr<VariationSource> SimultaneousSwitchingNoise::clone() const {
  return std::make_unique<SimultaneousSwitchingNoise>(*this);
}

// ----------------------------------------------------------------- IrDrop

IrDrop::IrDrop(double peak, double activity_period, DiePoint hot_corner,
               std::uint64_t /*seed*/)
    : bump_{hot_corner, 0.35, peak}, activity_{0.5, activity_period} {}

double IrDrop::at(double t, DiePoint p) const {
  // Activity square wave in [0, 1]: full drop when active, none when idle.
  const double duty = 0.5 + activity_.at(t);  // 0 or 1
  return bump_.at(p) * duty;
}

std::unique_ptr<VariationSource> IrDrop::clone() const {
  return std::make_unique<IrDrop>(*this);
}

// ---------------------------------------------------- TemperatureHotspot

TemperatureHotspot::TemperatureHotspot(double peak, DiePoint centre,
                                       double sigma, double onset,
                                       double time_constant)
    : bump_{centre, sigma, peak}, onset_{onset}, time_constant_{time_constant} {
  ROCLK_CHECK(time_constant > 0.0, "thermal time constant must be positive");
}

double TemperatureHotspot::at(double t, DiePoint p) const {
  if (t <= onset_) return 0.0;
  const double envelope = 1.0 - std::exp(-(t - onset_) / time_constant_);
  return bump_.at(p) * envelope;
}

std::unique_ptr<VariationSource> TemperatureHotspot::clone() const {
  return std::make_unique<TemperatureHotspot>(*this);
}

// ------------------------------------------------------------------ Aging

Aging::Aging(double saturation, double time_constant, StreamKey key)
    : saturation_{saturation},
      time_constant_{time_constant},
      stress_{key.split("stress"), 0.3, 3, 2} {
  ROCLK_CHECK(time_constant > 0.0, "aging time constant must be positive");
}

Aging::Aging(double saturation, double time_constant, std::uint64_t seed)
    : Aging{saturation, time_constant,
            StreamKey{seed}.split("variation.aging")} {}

double Aging::at(double t, DiePoint p) const {
  if (t <= 0.0) return 0.0;
  // Local stress modulates how fast the device approaches saturation.
  const double rate = std::max(0.1, 1.0 + stress_.at(p));
  return saturation_ * (1.0 - std::exp(-t * rate / time_constant_));
}

std::unique_ptr<VariationSource> Aging::clone() const {
  return std::make_unique<Aging>(*this);
}

// ------------------------------------------------------------ DroopTrain

DroopTrain::DroopTrain(double peak, double mean_spacing_stages,
                       double min_duration, double max_duration,
                       StreamKey key)
    : peak_{peak},
      spacing_{mean_spacing_stages},
      min_duration_{min_duration},
      max_duration_{max_duration},
      key_{key} {
  ROCLK_CHECK(peak >= 0.0, "peak cannot be negative");
  ROCLK_CHECK(mean_spacing_stages > 0.0, "spacing must be positive");
  ROCLK_CHECK(min_duration > 0.0 && max_duration >= min_duration,
                "invalid duration range");
  ROCLK_CHECK(max_duration <= mean_spacing_stages,
                "events longer than their slots would overlap");
}

DroopTrain::DroopTrain(double peak, double mean_spacing_stages,
                       double min_duration, double max_duration,
                       std::uint64_t seed)
    : DroopTrain{peak, mean_spacing_stages, min_duration, max_duration,
                 StreamKey{seed}.split("variation.droop_train")} {}

DroopTrain::Event DroopTrain::event_in_slot(std::int64_t slot) const {
  // One candidate event per spacing-sized slot; present with p ~ 0.63
  // (Poisson with one expected arrival per slot, clipped to <= 1 event).
  CounterRng rng{key_.at(static_cast<std::uint64_t>(slot))};
  Event event;
  event.present = rng.uniform() < 0.63;
  if (!event.present) return event;
  event.duration = rng.uniform(min_duration_, max_duration_);
  event.amplitude = rng.uniform(0.2 * peak_, peak_);
  const double slack = spacing_ - event.duration;
  event.start =
      static_cast<double>(slot) * spacing_ + rng.uniform(0.0, slack);
  return event;
}

double DroopTrain::at(double t, DiePoint /*p*/) const {
  const auto slot = static_cast<std::int64_t>(std::floor(t / spacing_));
  // An event from the previous slot can spill slightly past a boundary in
  // principle; our slots confine events, so only the current slot matters.
  const Event event = event_in_slot(slot);
  if (!event.present) return 0.0;
  const double x = (t - event.start) / event.duration;
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return event.amplitude * (x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x));
}

std::unique_ptr<VariationSource> DroopTrain::clone() const {
  return std::make_unique<DroopTrain>(*this);
}

// ---------------------------------------------------- CompositeVariation

CompositeVariation::CompositeVariation(const CompositeVariation& other) {
  parts_.reserve(other.parts_.size());
  for (const auto& p : other.parts_) parts_.push_back(p->clone());
}

CompositeVariation& CompositeVariation::operator=(
    const CompositeVariation& other) {
  if (this == &other) return *this;
  CompositeVariation copy{other};
  parts_ = std::move(copy.parts_);
  return *this;
}

CompositeVariation& CompositeVariation::add(
    std::unique_ptr<VariationSource> source) {
  ROCLK_CHECK(source != nullptr, "null variation source");
  parts_.push_back(std::move(source));
  return *this;
}

double CompositeVariation::at(double t, DiePoint p) const {
  double acc = 0.0;
  for (const auto& part : parts_) acc += part->at(t, p);
  return acc;
}

TemporalClass CompositeVariation::temporal_class() const {
  for (const auto& part : parts_) {
    if (part->temporal_class() == TemporalClass::kDynamic) {
      return TemporalClass::kDynamic;
    }
  }
  return TemporalClass::kStatic;
}

SpatialClass CompositeVariation::spatial_class() const {
  for (const auto& part : parts_) {
    if (part->spatial_class() == SpatialClass::kHeterogeneous) {
      return SpatialClass::kHeterogeneous;
    }
  }
  return SpatialClass::kHomogeneous;
}

std::string CompositeVariation::name() const {
  std::ostringstream os;
  os << "composite(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) os << " + ";
    os << parts_[i]->name();
  }
  os << ")";
  return os.str();
}

std::unique_ptr<VariationSource> CompositeVariation::clone() const {
  return std::make_unique<CompositeVariation>(*this);
}

// ----------------------------------------------------- WaveformVariation

WaveformVariation::WaveformVariation(std::unique_ptr<signal::Waveform> wave,
                                     std::string label)
    : wave_{std::move(wave)}, label_{std::move(label)} {
  ROCLK_CHECK(wave_ != nullptr, "null waveform");
}

WaveformVariation::WaveformVariation(const WaveformVariation& other)
    : wave_{other.wave_->clone()}, label_{other.label_} {}

double WaveformVariation::at(double t, DiePoint /*p*/) const {
  return wave_->at(t);
}

std::unique_ptr<VariationSource> WaveformVariation::clone() const {
  return std::make_unique<WaveformVariation>(*this);
}

}  // namespace roclk::variation
