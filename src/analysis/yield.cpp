#include "roclk/analysis/yield.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <utility>

#include "roclk/common/sharded_mc.hpp"
#include "roclk/common/stats.hpp"
#include "roclk/common/stream_key.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/variation/sources.hpp"

namespace roclk::analysis {

namespace {

/// Slowest-path delay (stages) of one fabricated chip.  `chip_key` is the
/// chip's own stream: every variation mechanism draws from a named child,
/// and each path's device noise from its own indexed substream, so the
/// sample is a pure function of the key — no draw-order coupling between
/// chips, mechanisms or paths.
double sample_worst_path(const YieldConfig& config, StreamKey chip_key) {
  CounterRng d2d_rng{chip_key.split("d2d")};
  const double d2d = d2d_rng.normal(0.0, config.d2d_sigma);
  const variation::WithinDieProcess wid{config.wid_sigma,
                                        chip_key.split("wid")};
  const auto floorplan = chip::Floorplan::random_paths(
      config.paths, config.nominal_depth, chip_key.split("floorplan"));
  const StreamKey rnd_key = chip_key.split("rnd");

  double worst = 0.0;
  std::size_t path_index = 0;
  for (const auto& path : floorplan.paths()) {
    CounterRng path_rng{rnd_key.at(path_index++)};
    const double rnd = path_rng.normal(0.0, config.rnd_sigma);
    const double v = d2d + wid.at(0.0, path.location) + rnd;
    worst = std::max(worst, path.depth_stages * (1.0 + v));
  }
  return worst;
}

/// The fields of YieldConfig that determine the worst-path distribution
/// (set-point, RO range and margins only post-process it).
struct WorstPathKey {
  std::size_t chips{0};
  std::size_t paths{0};
  double nominal_depth{0.0};
  double d2d_sigma{0.0};
  double wid_sigma{0.0};
  double rnd_sigma{0.0};
  std::uint64_t seed{0};

  [[nodiscard]] bool operator==(const WorstPathKey&) const = default;
};

/// Samples the per-chip slowest-path delays for `config`, memoising the
/// result: yield_curve and compare_margins share the Monte-Carlo instead
/// of re-fabricating the same virtual chips.  Chips draw from indexed
/// substreams of the yield stream key, so the sampling shards with
/// bitwise-identical results at any thread count.
std::shared_ptr<const std::vector<double>> sampled_worst_paths(
    const YieldConfig& config, ThreadPool* pool = &ThreadPool::shared()) {
  const WorstPathKey key{config.chips,     config.paths,
                         config.nominal_depth, config.d2d_sigma,
                         config.wid_sigma, config.rnd_sigma,
                         config.seed};
  static std::mutex mutex;
  static std::vector<
      std::pair<WorstPathKey, std::shared_ptr<const std::vector<double>>>>
      cache;
  {
    const std::lock_guard<std::mutex> lock{mutex};
    for (const auto& [cached_key, cached] : cache) {
      if (cached_key == key) return cached;
    }
  }

  auto worst_paths = std::make_shared<std::vector<double>>(
      sample_worst_paths(config, pool));

  const std::lock_guard<std::mutex> lock{mutex};
  // A concurrent caller may have raced us here; the duplicate entry is
  // harmless (both hold identical samples) and the first match wins.
  cache.emplace_back(key, worst_paths);
  return worst_paths;
}

}  // namespace

std::vector<double> sample_worst_paths(const YieldConfig& config,
                                       ThreadPool* pool) {
  const StreamKey chips_key =
      StreamKey{config.seed}.split("analysis.yield").split("chip");
  return mc::keyed_map(config.chips, chips_key, pool,
                       [&](std::size_t, StreamKey chip_key) {
                         return sample_worst_path(config, chip_key);
                       });
}

YieldCurve yield_curve(std::span<const double> margins,
                       const YieldConfig& config) {
  return yield_curve(margins, config, &ThreadPool::shared());
}

YieldCurve yield_curve(std::span<const double> margins,
                       const YieldConfig& config, ThreadPool* pool) {
  ROCLK_CHECK(config.chips > 0, "need at least one chip");
  ROCLK_CHECK(config.paths > 0, "need at least one path");
  ROCLK_CHECK(!margins.empty(), "empty margin sweep");

  const auto worst_paths_ptr = sampled_worst_paths(config, pool);
  const std::vector<double>& worst_paths = *worst_paths_ptr;

  RunningStats worst_stats;
  RunningStats adaptive_period_stats;
  std::size_t adaptive_ok = 0;
  for (const double worst : worst_paths) {
    worst_stats.add(worst);
    // The adaptive clock serves this chip if the RO can stretch at least
    // to the slowest path (and the chip's period *is* that path + loop
    // ripple, here idealised away: static variation only).
    if (worst <= static_cast<double>(config.ro_max_length)) {
      ++adaptive_ok;
      adaptive_period_stats.add(std::max(worst, config.setpoint_c));
    }
  }

  YieldCurve curve;
  curve.mean_worst_path = worst_stats.mean();
  curve.mean_adaptive_period = adaptive_period_stats.mean();
  curve.p99_worst_path = percentile(worst_paths, 0.99);

  const double adaptive_yield =
      static_cast<double>(adaptive_ok) / static_cast<double>(config.chips);

  // One sort turns every margin's pass count into a binary search: chips
  // with worst <= c + m are exactly the prefix up to upper_bound.
  std::vector<double> sorted_paths{worst_paths};
  std::sort(sorted_paths.begin(), sorted_paths.end());
  for (double margin : margins) {
    YieldPoint point;
    point.margin_stages = margin;
    const auto fixed_ok = static_cast<std::size_t>(
        std::upper_bound(sorted_paths.begin(), sorted_paths.end(),
                         config.setpoint_c + margin) -
        sorted_paths.begin());
    point.fixed_yield =
        static_cast<double>(fixed_ok) / static_cast<double>(config.chips);
    point.adaptive_yield = adaptive_yield;  // margin-independent
    curve.points.push_back(point);
  }
  return curve;
}

MarginComparison compare_margins(double target_yield,
                                 const YieldConfig& config) {
  ROCLK_CHECK(target_yield > 0.0 && target_yield <= 1.0,
                "target yield must be in (0, 1]");
  ROCLK_CHECK(config.chips > 0, "need at least one chip");
  ROCLK_CHECK(config.paths > 0, "need at least one path");

  const auto worst_paths_ptr = sampled_worst_paths(config);
  const std::vector<double>& worst_paths = *worst_paths_ptr;

  RunningStats adaptive_extra;
  for (const double worst : worst_paths) {
    adaptive_extra.add(std::max(0.0, worst - config.setpoint_c));
  }
  MarginComparison cmp;
  cmp.fixed_margin_needed = std::max(
      0.0, percentile(worst_paths, target_yield) - config.setpoint_c);
  cmp.adaptive_mean_extra_period = adaptive_extra.mean();
  cmp.margin_saved =
      cmp.fixed_margin_needed - cmp.adaptive_mean_extra_period;
  return cmp;
}

}  // namespace roclk::analysis
