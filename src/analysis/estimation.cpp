#include "roclk/analysis/estimation.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/common/stats.hpp"
#include "roclk/signal/spectrum.hpp"

namespace roclk::analysis {

double cross_correlation_at_lag(std::span<const double> x,
                                std::span<const double> y,
                                std::ptrdiff_t lag) {
  ROCLK_CHECK(x.size() == y.size(), "series length mismatch");
  ROCLK_CHECK(!x.empty(), "empty series");
  const double mx = mean(x);
  const double my = mean(y);
  double num = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t j = i - lag;
    if (j < 0 || j >= n) continue;
    const double xv = x[static_cast<std::size_t>(j)] - mx;
    const double yv = y[static_cast<std::size_t>(i)] - my;
    num += xv * yv;
    sx += xv * xv;
    sy += yv * yv;
  }
  if (sx <= 0.0 || sy <= 0.0) return 0.0;
  return num / std::sqrt(sx * sy);
}

std::ptrdiff_t best_lag(std::span<const double> x, std::span<const double> y,
                        std::ptrdiff_t min_lag, std::ptrdiff_t max_lag) {
  ROCLK_CHECK(min_lag <= max_lag, "empty lag range");
  std::ptrdiff_t best = min_lag;
  double best_corr = -2.0;
  for (std::ptrdiff_t lag = min_lag; lag <= max_lag; ++lag) {
    const double corr = cross_correlation_at_lag(x, y, lag);
    if (corr > best_corr) {
      best_corr = corr;
      best = lag;
    }
  }
  return best;
}

Result<LoopDelayEstimate> estimate_loop_delay(
    std::span<const double> timing_error,
    std::span<const double> perturbation, std::ptrdiff_t max_delay) {
  if (timing_error.size() != perturbation.size()) {
    return Status::invalid_argument("series length mismatch");
  }
  if (timing_error.size() < static_cast<std::size_t>(max_delay) + 8) {
    return Status::invalid_argument("trace too short for the lag search");
  }
  // Free-RO residual: err[n] = e[n-d] - e[n-1].  Reconstruct the delayed
  // copy: err[n] + e[n-1] = e[n-d], then find d by correlation.
  const auto n = timing_error.size();
  std::vector<double> reconstructed(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    reconstructed[i] = timing_error[i] + perturbation[i - 1];
  }
  LoopDelayEstimate estimate;
  estimate.delay_cycles =
      best_lag(perturbation, reconstructed, 0, max_delay);
  estimate.correlation = cross_correlation_at_lag(
      perturbation, reconstructed, estimate.delay_cycles);
  if (estimate.correlation < 0.5) {
    return Status::failed_precondition(
        "no coherent delayed copy found (is this a free-RO trace?)");
  }
  return estimate;
}

double measured_attenuation(std::span<const double> timing_error,
                            std::span<const double> perturbation,
                            double period_samples) {
  ROCLK_CHECK(period_samples > 1.0, "period must exceed one sample");
  const double injected =
      signal::tone_amplitude(perturbation, 1.0 / period_samples);
  ROCLK_CHECK(injected > 0.0, "no tone in the perturbation series");
  const double residual =
      signal::tone_amplitude(timing_error, 1.0 / period_samples);
  return residual / injected;
}

}  // namespace roclk::analysis
