#include "roclk/analysis/sweep_cache.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace roclk::analysis {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64-style combiner; cheap and good enough for sweep grids.
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  return h ^ (h >> 33);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

struct KeyHash {
  std::size_t operator()(const SweepKey& key) const {
    std::uint64_t h = 0x6C62272E07BB0142ULL;
    h = mix(h, static_cast<std::uint64_t>(key.kind));
    h = mix(h, bits(key.setpoint_c));
    h = mix(h, bits(key.tclk_stages));
    h = mix(h, bits(key.amplitude_stages));
    h = mix(h, bits(key.period_stages));
    h = mix(h, bits(key.mu_stages));
    h = mix(h, key.cycles);
    h = mix(h, key.skip);
    h = mix(h, bits(key.free_ro_margin));
    h = mix(h, static_cast<std::uint64_t>(key.quantization));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

struct SweepMemo::Impl {
  struct Entry {
    RunMetrics metrics;
    std::list<SweepKey>::iterator recency;  // position in `lru`
  };

  mutable std::mutex mutex;
  std::unordered_map<SweepKey, Entry, KeyHash> entries;
  std::list<SweepKey> lru;  // front = most recently used
  std::size_t capacity{0};  // 0 = unbounded (the historical behaviour)
  std::size_t hits{0};
  std::size_t misses{0};
  std::size_t evictions{0};
  bool enabled{true};

  // All three helpers assume `mutex` is held.
  void touch(Entry& entry) {
    lru.splice(lru.begin(), lru, entry.recency);
  }

  void insert(const SweepKey& key, const RunMetrics& metrics) {
    const auto it = entries.find(key);
    if (it != entries.end()) {
      it->second.metrics = metrics;
      touch(it->second);
      return;
    }
    lru.push_front(key);
    entries.emplace(key, Entry{metrics, lru.begin()});
    evict_over_capacity();
  }

  void evict_over_capacity() {
    if (capacity == 0) return;
    while (entries.size() > capacity) {
      entries.erase(lru.back());
      lru.pop_back();
      ++evictions;
    }
  }
};

SweepMemo::SweepMemo() : impl_{std::make_unique<Impl>()} {}
SweepMemo::~SweepMemo() = default;

SweepMemo& SweepMemo::global() {
  static SweepMemo memo;
  return memo;
}

bool SweepMemo::lookup(const SweepKey& key, RunMetrics& metrics) {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->enabled) {
    ++impl_->misses;
    return false;
  }
  const auto it = impl_->entries.find(key);
  if (it == impl_->entries.end()) {
    ++impl_->misses;
    return false;
  }
  ++impl_->hits;
  impl_->touch(it->second);
  metrics = it->second.metrics;
  return true;
}

void SweepMemo::store(const SweepKey& key, const RunMetrics& metrics) {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->enabled) return;
  impl_->insert(key, metrics);
}

SweepMemoStats SweepMemo::stats() const {
  std::lock_guard lock(impl_->mutex);
  return {impl_->hits, impl_->misses, impl_->entries.size(),
          impl_->evictions};
}

void SweepMemo::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->entries.clear();
  impl_->lru.clear();
  impl_->hits = 0;
  impl_->misses = 0;
  impl_->evictions = 0;
}

void SweepMemo::set_capacity(std::size_t capacity) {
  std::lock_guard lock(impl_->mutex);
  impl_->capacity = capacity;
  impl_->evict_over_capacity();
}

std::size_t SweepMemo::capacity() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->capacity;
}

namespace {

// Little-endian-agnostic framing: every field widens to a u64 word, the
// trailing checksum chains the same splitmix combiner over every word.  A
// torn write truncates the stream or breaks the checksum; either way the
// loader degrades instead of trusting partial data.
constexpr std::uint64_t kMemoMagic = 0x524F434C4B4D454DULL;  // "ROCLKMEM"
constexpr std::uint32_t kMemoVersion = 1;
constexpr std::size_t kWordsPerEntry = 15;  // 10 key + 5 metrics words

struct WordWriter {
  std::vector<std::uint64_t> words;
  std::uint64_t checksum{0x6C62272E07BB0142ULL};
  void put(std::uint64_t v) {
    words.push_back(v);
    checksum = mix(checksum, v);
  }
  void put(double v) { put(bits(v)); }
};

struct WordReader {
  const std::uint64_t* words{nullptr};
  std::size_t count{0};
  std::size_t next{0};
  std::uint64_t checksum{0x6C62272E07BB0142ULL};
  std::uint64_t take() {
    const std::uint64_t v = words[next++];
    checksum = mix(checksum, v);
    return v;
  }
  double take_double() { return std::bit_cast<double>(take()); }
};

}  // namespace

Status SweepMemo::save_file(const std::string& path) const {
  std::lock_guard lock(impl_->mutex);
  WordWriter out;
  out.put(kMemoMagic);
  out.put(static_cast<std::uint64_t>(kMemoVersion));
  out.put(static_cast<std::uint64_t>(impl_->entries.size()));
  for (const auto& [key, entry] : impl_->entries) {
    const RunMetrics& metrics = entry.metrics;
    out.put(static_cast<std::uint64_t>(static_cast<std::int64_t>(key.kind)));
    out.put(key.setpoint_c);
    out.put(key.tclk_stages);
    out.put(key.amplitude_stages);
    out.put(key.period_stages);
    out.put(key.mu_stages);
    out.put(static_cast<std::uint64_t>(key.cycles));
    out.put(static_cast<std::uint64_t>(key.skip));
    out.put(key.free_ro_margin);
    out.put(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(key.quantization)));
    out.put(metrics.safety_margin);
    out.put(metrics.mean_period);
    out.put(metrics.relative_adaptive_period);
    out.put(static_cast<std::uint64_t>(metrics.violations));
    out.put(metrics.tau_ripple);
  }
  const std::uint64_t checksum = out.checksum;
  out.words.push_back(checksum);

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::internal("cannot open memo file for writing: " + path);
  }
  file.write(reinterpret_cast<const char*>(out.words.data()),
             static_cast<std::streamsize>(out.words.size() *
                                          sizeof(std::uint64_t)));
  if (!file) {
    return Status::internal("short write persisting memo to " + path);
  }
  return Status::ok();
}

Status SweepMemo::load_file(const std::string& path) {
  std::lock_guard lock(impl_->mutex);
  // Degrade-first: the entries are dropped up front, so EVERY early return
  // below leaves an empty (never a half-loaded or stale) memo.
  impl_->entries.clear();
  impl_->lru.clear();

  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    return Status::not_found("no persisted memo at " + path);
  }
  const std::streamoff size = file.tellg();
  if (size < 0 ||
      static_cast<std::size_t>(size) % sizeof(std::uint64_t) != 0 ||
      static_cast<std::size_t>(size) < 4 * sizeof(std::uint64_t)) {
    return Status::invalid_argument(
        "memo file is truncated or not a memo: " + path);
  }
  std::vector<std::uint64_t> words(static_cast<std::size_t>(size) /
                                   sizeof(std::uint64_t));
  file.seekg(0);
  file.read(reinterpret_cast<char*>(words.data()), size);
  if (!file) {
    return Status::internal("short read loading memo from " + path);
  }

  WordReader in{words.data(), words.size()};
  if (in.take() != kMemoMagic) {
    return Status::invalid_argument("bad memo magic in " + path);
  }
  const std::uint64_t version = in.take();
  if (version != kMemoVersion) {
    return Status::invalid_argument("unsupported memo version in " + path);
  }
  const std::uint64_t count = in.take();
  // 3 header words + entries + 1 checksum word, checked BEFORE indexing so
  // a truncated (torn-write) file cannot read out of bounds.
  const std::uint64_t expected = 3 + count * kWordsPerEntry + 1;
  if (count > (words.size() - 4) / kWordsPerEntry ||
      words.size() != expected) {
    return Status::invalid_argument(
        "memo file is truncated (torn write?): " + path);
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    SweepKey key;
    RunMetrics metrics;
    key.kind = static_cast<int>(static_cast<std::int64_t>(in.take()));
    key.setpoint_c = in.take_double();
    key.tclk_stages = in.take_double();
    key.amplitude_stages = in.take_double();
    key.period_stages = in.take_double();
    key.mu_stages = in.take_double();
    key.cycles = static_cast<std::size_t>(in.take());
    key.skip = static_cast<std::size_t>(in.take());
    key.free_ro_margin = in.take_double();
    key.quantization =
        static_cast<int>(static_cast<std::int64_t>(in.take()));
    metrics.safety_margin = in.take_double();
    metrics.mean_period = in.take_double();
    metrics.relative_adaptive_period = in.take_double();
    metrics.violations = static_cast<std::size_t>(in.take());
    metrics.tau_ripple = in.take_double();
    impl_->insert(key, metrics);
  }
  const std::uint64_t computed = in.checksum;
  if (in.take() != computed) {
    impl_->entries.clear();
    impl_->lru.clear();
    return Status::invalid_argument(
        "memo checksum mismatch (corrupt file): " + path);
  }
  return Status::ok();
}

void SweepMemo::set_enabled(bool enabled) {
  std::lock_guard lock(impl_->mutex);
  impl_->enabled = enabled;
}

bool SweepMemo::enabled() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->enabled;
}

}  // namespace roclk::analysis
