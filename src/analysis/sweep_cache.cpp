#include "roclk/analysis/sweep_cache.hpp"

#include <bit>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace roclk::analysis {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64-style combiner; cheap and good enough for sweep grids.
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  return h ^ (h >> 33);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

struct KeyHash {
  std::size_t operator()(const SweepKey& key) const {
    std::uint64_t h = 0x6C62272E07BB0142ULL;
    h = mix(h, static_cast<std::uint64_t>(key.kind));
    h = mix(h, bits(key.setpoint_c));
    h = mix(h, bits(key.tclk_stages));
    h = mix(h, bits(key.amplitude_stages));
    h = mix(h, bits(key.period_stages));
    h = mix(h, bits(key.mu_stages));
    h = mix(h, key.cycles);
    h = mix(h, key.skip);
    h = mix(h, bits(key.free_ro_margin));
    h = mix(h, static_cast<std::uint64_t>(key.quantization));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

struct SweepMemo::Impl {
  mutable std::mutex mutex;
  std::unordered_map<SweepKey, RunMetrics, KeyHash> entries;
  std::size_t hits{0};
  std::size_t misses{0};
  bool enabled{true};
};

SweepMemo::SweepMemo() : impl_{std::make_unique<Impl>()} {}
SweepMemo::~SweepMemo() = default;

SweepMemo& SweepMemo::global() {
  static SweepMemo memo;
  return memo;
}

bool SweepMemo::lookup(const SweepKey& key, RunMetrics& metrics) {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->enabled) {
    ++impl_->misses;
    return false;
  }
  const auto it = impl_->entries.find(key);
  if (it == impl_->entries.end()) {
    ++impl_->misses;
    return false;
  }
  ++impl_->hits;
  metrics = it->second;
  return true;
}

void SweepMemo::store(const SweepKey& key, const RunMetrics& metrics) {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->enabled) return;
  impl_->entries.insert_or_assign(key, metrics);
}

SweepMemoStats SweepMemo::stats() const {
  std::lock_guard lock(impl_->mutex);
  return {impl_->hits, impl_->misses, impl_->entries.size()};
}

void SweepMemo::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->entries.clear();
  impl_->hits = 0;
  impl_->misses = 0;
}

void SweepMemo::set_enabled(bool enabled) {
  std::lock_guard lock(impl_->mutex);
  impl_->enabled = enabled;
}

bool SweepMemo::enabled() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->enabled;
}

}  // namespace roclk::analysis
