#include "roclk/analysis/metrics.hpp"

#include "roclk/common/status.hpp"

namespace roclk::analysis {

RunMetrics evaluate_run(const core::SimulationTrace& trace, double setpoint_c,
                        double fixed_period, std::size_t skip) {
  ROCLK_CHECK(fixed_period > 0.0, "fixed period must be positive");
  ROCLK_CHECK(skip < trace.size(), "transient skip longer than trace");
  RunMetrics metrics;
  metrics.safety_margin = trace.required_safety_margin(setpoint_c, skip);
  metrics.mean_period = trace.mean_delivered_period(skip);
  metrics.relative_adaptive_period =
      (metrics.mean_period + metrics.safety_margin) / fixed_period;
  metrics.violations = trace.violation_count(skip);
  metrics.tau_ripple = trace.tau_ripple(skip);
  return metrics;
}

double fixed_clock_period(double setpoint_c, double hodv_amplitude_stages,
                          double mu_bound_stages) {
  ROCLK_CHECK(setpoint_c > 0.0, "set-point must be positive");
  ROCLK_CHECK(hodv_amplitude_stages >= 0.0, "amplitude cannot be negative");
  ROCLK_CHECK(mu_bound_stages >= 0.0, "mismatch bound cannot be negative");
  return setpoint_c + hodv_amplitude_stages + mu_bound_stages;
}

double safety_margin_reduction(double relative_adaptive_period,
                               double fixed_period, double setpoint_c) {
  const double fixed_margin = fixed_period - setpoint_c;
  ROCLK_CHECK(fixed_margin > 0.0, "fixed clock has no margin to reduce");
  const double adaptive_margin =
      relative_adaptive_period * fixed_period - setpoint_c;
  return (fixed_margin - adaptive_margin) / fixed_margin;
}

}  // namespace roclk::analysis
