#include "roclk/analysis/stability_metrics.hpp"

#include <cmath>

namespace roclk::analysis {

Result<double> allan_deviation(std::span<const double> y, std::size_t m) {
  if (m == 0) return Status::invalid_argument("averaging factor must be > 0");
  if (y.size() < 2 * m + 1) {
    return Status::invalid_argument("need at least 2m + 1 samples");
  }
  const std::size_t n = y.size();

  // Prefix sums for O(1) window means.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + y[i];
  auto window_mean = [&](std::size_t start) {
    return (prefix[start + m] - prefix[start]) / static_cast<double>(m);
  };

  // Overlapping estimator:
  //   sigma^2(m) = 1/(2 (N - 2m + 1)) sum_i (ybar_{i+m} - ybar_i)^2 .
  const std::size_t terms = n - 2 * m + 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < terms; ++i) {
    const double diff = window_mean(i + m) - window_mean(i);
    acc += diff * diff;
  }
  return std::sqrt(acc / (2.0 * static_cast<double>(terms)));
}

std::vector<AllanPoint> allan_curve(std::span<const double> y) {
  std::vector<AllanPoint> curve;
  for (std::size_t m = 1; 3 * m <= y.size(); m *= 2) {
    auto adev = allan_deviation(y, m);
    if (!adev.is_ok()) break;
    curve.push_back({m, adev.value()});
  }
  return curve;
}

std::vector<double> fractional_deviation(std::span<const double> periods,
                                         double nominal) {
  ROCLK_CHECK(nominal > 0.0, "nominal period must be positive");
  std::vector<double> out;
  out.reserve(periods.size());
  for (double t : periods) out.push_back((t - nominal) / nominal);
  return out;
}

}  // namespace roclk::analysis
