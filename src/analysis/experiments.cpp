#include "roclk/analysis/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/analysis/sweep_cache.hpp"
#include "roclk/common/status.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/signal/waveform.hpp"

namespace roclk::analysis {

namespace {

/// Config + controller for one system, shared by the scalar and ensemble
/// paths so both construct bit-identical loops.
struct SystemParts {
  core::LoopConfig config;
  std::unique_ptr<control::ControlBlock> controller;
};

SystemParts make_system_parts(SystemKind kind, double setpoint_c,
                              double cdn_delay_stages, double open_loop_margin,
                              cdn::DelayQuantization cdn_quantization) {
  SystemParts parts;
  core::LoopConfig& cfg = parts.config;
  cfg.setpoint_c = setpoint_c;
  cfg.cdn_delay_stages = cdn_delay_stages;
  cfg.cdn_quantization = cdn_quantization;
  switch (kind) {
    case SystemKind::kIir:
      cfg.mode = core::GeneratorMode::kControlledRo;
      parts.controller = std::make_unique<control::IirControlHardware>(
          control::paper_iir_config());
      break;
    case SystemKind::kTeaTime:
      cfg.mode = core::GeneratorMode::kControlledRo;
      parts.controller = std::make_unique<control::TeaTimeControl>();
      break;
    case SystemKind::kFreeRo:
      cfg.mode = core::GeneratorMode::kFreeRunningRo;
      cfg.open_loop_period = setpoint_c + open_loop_margin;
      break;
    case SystemKind::kFixedClock:
      cfg.mode = core::GeneratorMode::kFixedClock;
      cfg.open_loop_period = setpoint_c + open_loop_margin;
      break;
  }
  return parts;
}

}  // namespace

core::LoopSimulator make_system(SystemKind kind, double setpoint_c,
                                double cdn_delay_stages,
                                double open_loop_margin,
                                cdn::DelayQuantization cdn_quantization) {
  SystemParts parts = make_system_parts(kind, setpoint_c, cdn_delay_stages,
                                        open_loop_margin, cdn_quantization);
  return core::LoopSimulator{parts.config, std::move(parts.controller)};
}

std::size_t cycles_for(const ExperimentParams& params, double te_over_c) {
  // One control sample covers ~one nominal period, so a perturbation of
  // T_e = k*c stages spans ~k samples.
  const double te_samples = std::max(1.0, te_over_c);
  const auto settle = static_cast<std::size_t>(
      std::ceil(params.periods_of_perturbation * te_samples));
  const std::size_t skip = std::max(
      params.transient_skip,
      static_cast<std::size_t>(std::ceil(3.0 * te_samples)));
  const std::size_t cycles = skip + std::max(params.min_cycles, settle);
  return std::min(cycles, params.max_cycles);
}

namespace {

std::size_t skip_for(const ExperimentParams& params, double te_over_c) {
  const double te_samples = std::max(1.0, te_over_c);
  return std::max(params.transient_skip,
                  static_cast<std::size_t>(std::ceil(3.0 * te_samples)));
}

}  // namespace

RunMetrics measure_system(SystemKind kind, double setpoint_c,
                          double tclk_stages, double amplitude_stages,
                          double period_stages, double mu_stages,
                          double fixed_period, std::size_t cycles,
                          std::size_t skip, double free_ro_margin,
                          cdn::DelayQuantization cdn_quantization) {
  // The run is fully determined by the key; T_fixed only renormalises the
  // result, so memo hits are valid across sweeps with different T_fixed.
  const SweepKey key{static_cast<int>(kind),
                     setpoint_c,
                     tclk_stages,
                     amplitude_stages,
                     period_stages,
                     mu_stages,
                     cycles,
                     skip,
                     free_ro_margin,
                     static_cast<int>(cdn_quantization)};
  auto& memo = SweepMemo::global();
  RunMetrics metrics;
  if (memo.lookup(key, metrics)) {
    metrics.relative_adaptive_period =
        (metrics.mean_period + metrics.safety_margin) / fixed_period;
    return metrics;
  }

  auto system = make_system(kind, setpoint_c, tclk_stages, free_ro_margin,
                            cdn_quantization);
  const auto inputs = core::SimulationInputs::harmonic(
      amplitude_stages, period_stages, mu_stages);
  const auto block = inputs.sample(cycles, setpoint_c);
  const auto trace = system.run_batch(block);
  metrics = evaluate_run(trace, setpoint_c, fixed_period, skip);
  memo.store(key, metrics);
  return metrics;
}

std::vector<RunMetrics> measure_system_ensemble(
    SystemKind kind, double setpoint_c, std::span<const double> tclk_stages,
    double amplitude_stages, double period_stages,
    std::span<const double> mu_stages, double fixed_period,
    std::size_t cycles, std::size_t skip, double free_ro_margin,
    cdn::DelayQuantization cdn_quantization) {
  return measure_system_ensemble(kind, setpoint_c, tclk_stages,
                                 amplitude_stages, period_stages, mu_stages,
                                 fixed_period, cycles, skip, free_ro_margin,
                                 cdn_quantization, &ThreadPool::shared());
}

std::vector<RunMetrics> measure_system_ensemble(
    SystemKind kind, double setpoint_c, std::span<const double> tclk_stages,
    double amplitude_stages, double period_stages,
    std::span<const double> mu_stages, double fixed_period,
    std::size_t cycles, std::size_t skip, double free_ro_margin,
    cdn::DelayQuantization cdn_quantization, ThreadPool* pool) {
  const std::size_t lanes = std::max(tclk_stages.size(), mu_stages.size());
  ROCLK_CHECK(lanes > 0, "no operating points");
  ROCLK_CHECK(tclk_stages.size() == lanes || tclk_stages.size() == 1,
                "tclk span must hold one value or one per lane");
  ROCLK_CHECK(mu_stages.size() == lanes || mu_stages.size() == 1,
                "mu span must hold one value or one per lane");
  const auto tclk_at = [&](std::size_t i) {
    return tclk_stages.size() == 1 ? tclk_stages.front() : tclk_stages[i];
  };
  const auto mu_at = [&](std::size_t i) {
    return mu_stages.size() == 1 ? mu_stages.front() : mu_stages[i];
  };
  const auto key_for = [&](std::size_t i) {
    return SweepKey{static_cast<int>(kind),
                    setpoint_c,
                    tclk_at(i),
                    amplitude_stages,
                    period_stages,
                    mu_at(i),
                    cycles,
                    skip,
                    free_ro_margin,
                    static_cast<int>(cdn_quantization)};
  };

  auto& memo = SweepMemo::global();
  std::vector<RunMetrics> out(lanes);
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < lanes; ++i) {
    RunMetrics metrics;
    if (memo.lookup(key_for(i), metrics)) {
      metrics.relative_adaptive_period =
          (metrics.mean_period + metrics.safety_margin) / fixed_period;
      out[i] = metrics;
    } else {
      pending.push_back(i);
    }
  }
  if (pending.empty()) return out;

  // Only the memo misses become ensemble lanes.
  std::vector<core::LoopConfig> configs;
  std::vector<std::unique_ptr<control::ControlBlock>> controllers;
  std::vector<double> lane_mus;
  configs.reserve(pending.size());
  lane_mus.reserve(pending.size());
  for (const std::size_t i : pending) {
    SystemParts parts = make_system_parts(kind, setpoint_c, tclk_at(i),
                                          free_ro_margin, cdn_quantization);
    configs.push_back(parts.config);
    if (parts.controller) controllers.push_back(std::move(parts.controller));
    lane_mus.push_back(mu_at(i));
  }
  core::EnsembleSimulator ensemble{std::move(configs),
                                   std::move(controllers)};

  // All lanes share the harmonic HoDV waveform; it is evaluated once per
  // cycle and broadcast (the bit-identical fast path of the per-lane
  // SimulationInputs::harmonic sampling measure_system performs).
  const signal::SineWaveform waveform{amplitude_stages, period_stages};
  const auto block = core::sample_homogeneous_ensemble(
      waveform, lane_mus, cycles, setpoint_c);
  const std::vector<RunMetrics> measured =
      evaluate_ensemble(ensemble, block, {fixed_period}, skip, pool);
  for (std::size_t j = 0; j < pending.size(); ++j) {
    out[pending[j]] = measured[j];
    memo.store(key_for(pending[j]), measured[j]);
  }
  return out;
}

// -------------------------------------------------------------------- Fig 7

Fig7Result fig7_timing_error(double te_over_c, double tclk_over_c,
                             std::size_t first_period,
                             std::size_t last_period,
                             const ExperimentParams& params) {
  ROCLK_CHECK(last_period > first_period, "empty period window");
  const double c = params.setpoint_c;
  const double amplitude = params.amplitude_frac * c;
  const double period = te_over_c * c;
  const std::size_t cycles =
      std::max<std::size_t>(last_period + 1, cycles_for(params, te_over_c));

  Fig7Result result;
  result.te_over_c = te_over_c;
  result.first_period = first_period;
  result.last_period = last_period;
  for (SystemKind kind : kAllSystems) {
    auto system = make_system(kind, c, tclk_over_c * c);
    const auto inputs = core::SimulationInputs::harmonic(amplitude, period);
    const auto trace = system.run(inputs, cycles);
    const auto err = trace.timing_error(c);
    Fig7Trace slice;
    slice.system = kind;
    slice.timing_error.assign(
        err.begin() + static_cast<std::ptrdiff_t>(first_period),
        err.begin() + static_cast<std::ptrdiff_t>(last_period + 1));
    result.traces.push_back(std::move(slice));
  }
  return result;
}

// -------------------------------------------------------------------- Fig 8

namespace {

RelativePeriodRow relative_period_row(double x, double tclk_over_c,
                                      double te_over_c,
                                      const ExperimentParams& params) {
  const double c = params.setpoint_c;
  const double amplitude = params.amplitude_frac * c;
  const double fixed_period = fixed_clock_period(c, amplitude);
  const std::size_t cycles = cycles_for(params, te_over_c);
  const std::size_t skip = skip_for(params, te_over_c);

  RelativePeriodRow row;
  row.x = x;
  row.iir = measure_system(SystemKind::kIir, c, tclk_over_c * c, amplitude,
                           te_over_c * c, 0.0, fixed_period, cycles, skip)
                .relative_adaptive_period;
  row.teatime =
      measure_system(SystemKind::kTeaTime, c, tclk_over_c * c, amplitude,
                     te_over_c * c, 0.0, fixed_period, cycles, skip)
          .relative_adaptive_period;
  row.free_ro =
      measure_system(SystemKind::kFreeRo, c, tclk_over_c * c, amplitude,
                     te_over_c * c, 0.0, fixed_period, cycles, skip)
          .relative_adaptive_period;
  return row;
}

}  // namespace

std::vector<RelativePeriodRow> fig8_cdn_delay_sweep(
    std::span<const double> tclk_over_c, double te_over_c,
    const ExperimentParams& params) {
  // The perturbation (and therefore the cycle count) is shared across the
  // sweep, so the t_clk axis runs as ensemble lanes: one lane-parallel run
  // per system instead of one simulator per (system, t_clk) cell.
  const double c = params.setpoint_c;
  const double amplitude = params.amplitude_frac * c;
  const double fixed_period = fixed_clock_period(c, amplitude);
  const std::size_t cycles = cycles_for(params, te_over_c);
  const std::size_t skip = skip_for(params, te_over_c);

  std::vector<double> tclk_lanes;
  tclk_lanes.reserve(tclk_over_c.size());
  for (const double x : tclk_over_c) tclk_lanes.push_back(x * c);
  const double mu = 0.0;

  std::vector<RelativePeriodRow> rows(tclk_over_c.size());
  for (const SystemKind kind : kAdaptiveSystems) {
    const std::vector<RunMetrics> metrics = measure_system_ensemble(
        kind, c, tclk_lanes, amplitude, te_over_c * c, {&mu, 1},
        fixed_period, cycles, skip, 0.0, params.cdn_quantization);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i].x = tclk_over_c[i];
      switch (kind) {
        case SystemKind::kIir:
          rows[i].iir = metrics[i].relative_adaptive_period;
          break;
        case SystemKind::kTeaTime:
          rows[i].teatime = metrics[i].relative_adaptive_period;
          break;
        default:
          rows[i].free_ro = metrics[i].relative_adaptive_period;
          break;
      }
    }
  }
  return rows;
}

std::vector<RelativePeriodRow> fig8_frequency_sweep(
    std::span<const double> te_over_c, double tclk_over_c,
    const ExperimentParams& params) {
  std::vector<RelativePeriodRow> rows(te_over_c.size());
  parallel_for(te_over_c.size(), [&](std::size_t i) {
    rows[i] =
        relative_period_row(te_over_c[i], tclk_over_c, te_over_c[i], params);
  });
  return rows;
}

std::vector<double> log_space(double lo, double hi, std::size_t points) {
  ROCLK_CHECK(lo > 0.0 && hi > lo, "invalid log range");
  ROCLK_CHECK(points >= 2, "need at least two points");
  std::vector<double> out(points);
  const double step =
      (std::log10(hi) - std::log10(lo)) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    out[i] = std::pow(10.0, std::log10(lo) + step * static_cast<double>(i));
  }
  return out;
}

// -------------------------------------------------------------------- Fig 9

Fig9Cell fig9_mismatch_sweep(double tclk_over_c, double te_over_c,
                             std::span<const double> mu_over_c,
                             const ExperimentParams& params) {
  ROCLK_CHECK(!mu_over_c.empty(), "empty mu sweep");
  const double c = params.setpoint_c;
  const double amplitude = params.amplitude_frac * c;
  double mu_bound = 0.0;
  for (double mu : mu_over_c) mu_bound = std::max(mu_bound, std::fabs(mu));
  const double fixed_period = fixed_clock_period(c, amplitude, mu_bound * c);
  const std::size_t cycles = cycles_for(params, te_over_c);
  const std::size_t skip = skip_for(params, te_over_c);

  Fig9Cell cell;
  cell.tclk_over_c = tclk_over_c;
  cell.te_over_c = te_over_c;
  cell.mu_over_c.assign(mu_over_c.begin(), mu_over_c.end());
  cell.iir.resize(mu_over_c.size());
  cell.teatime.resize(mu_over_c.size());
  cell.free_ro.resize(mu_over_c.size());

  // The mu axis runs as ensemble lanes: all lanes share the harmonic HoDV
  // and cycle count, only the static mismatch differs per lane.
  std::vector<double> mu_lanes;
  mu_lanes.reserve(mu_over_c.size());
  for (const double mu : mu_over_c) mu_lanes.push_back(mu * c);
  const double tclk = tclk_over_c * c;

  const std::vector<RunMetrics> iir = measure_system_ensemble(
      SystemKind::kIir, c, {&tclk, 1}, amplitude, te_over_c * c, mu_lanes,
      fixed_period, cycles, skip);
  const std::vector<RunMetrics> teatime = measure_system_ensemble(
      SystemKind::kTeaTime, c, {&tclk, 1}, amplitude, te_over_c * c,
      mu_lanes, fixed_period, cycles, skip);
  const std::vector<RunMetrics> free_ro = measure_system_ensemble(
      SystemKind::kFreeRo, c, {&tclk, 1}, amplitude, te_over_c * c, mu_lanes,
      fixed_period, cycles, skip);

  // The free RO's l_RO is frozen at design time, so its margin must cover
  // the worst mu of the whole range.
  double design_margin = 0.0;
  for (const RunMetrics& run : free_ro) {
    design_margin = std::max(design_margin, run.safety_margin);
  }
  for (std::size_t i = 0; i < mu_over_c.size(); ++i) {
    cell.iir[i] = iir[i].relative_adaptive_period;
    cell.teatime[i] = teatime[i].relative_adaptive_period;
    cell.free_ro[i] = (free_ro[i].mean_period + design_margin) / fixed_period;
  }
  return cell;
}

// ------------------------------------------------------- worked examples

WorkedExample worked_example(double relative_adaptive_period,
                             double fixed_period_stages, double setpoint_c,
                             double ns_per_setpoint) {
  WorkedExample ex;
  const double ns_per_stage = ns_per_setpoint / setpoint_c;
  ex.fixed_period_ns = fixed_period_stages * ns_per_stage;
  ex.adaptive_period_ns =
      relative_adaptive_period * fixed_period_stages * ns_per_stage;
  ex.margin_saved_ns = ex.fixed_period_ns - ex.adaptive_period_ns;
  ex.margin_reduction = safety_margin_reduction(
      relative_adaptive_period, fixed_period_stages, setpoint_c);
  return ex;
}

}  // namespace roclk::analysis
