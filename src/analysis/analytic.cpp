#include "roclk/analysis/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"

namespace roclk::analysis {

double cdn_mismatch(const signal::Waveform& nu, double t, double t_clk) {
  return nu.at(t) - nu.at(t - t_clk);
}

double harmonic_worst_mismatch(double t_clk, double period, double amplitude) {
  ROCLK_CHECK(period > 0.0, "period must be positive");
  return 2.0 * std::fabs(amplitude) *
         std::fabs(std::sin(kPi * t_clk / period));
}

double single_event_worst_mismatch(double t_clk, double duration,
                                   double amplitude) {
  ROCLK_CHECK(duration > 0.0, "duration must be positive");
  const double ratio = t_clk / duration;
  if (ratio <= 0.0) return 0.0;
  if (ratio <= 0.5) return 2.0 * std::fabs(amplitude) * ratio;
  return std::fabs(amplitude);
}

bool harmonic_ro_beneficial(double t_clk, double period) {
  // The RO helps when its induced worst mismatch 2 nu0 |sin(pi t/T)| stays
  // below the bare perturbation amplitude nu0.
  return harmonic_worst_mismatch(t_clk, period, 1.0) < 1.0;
}

double harmonic_benefit_limit(double period) { return period / 6.0; }

double numeric_worst_mismatch(const signal::Waveform& nu, double period,
                              double t_clk, std::size_t samples) {
  ROCLK_CHECK(samples >= 2, "need at least two samples");
  double worst = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double t =
        period * static_cast<double>(i) / static_cast<double>(samples);
    worst = std::max(worst, std::fabs(cdn_mismatch(nu, t, t_clk)));
  }
  return worst;
}

}  // namespace roclk::analysis
