#include "roclk/analysis/multi_domain.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"

namespace roclk::analysis {

namespace {

/// Inputs for one domain: the domain's own RO location and its local TDC
/// grid, all sampled from the shared environment.
core::SimulationInputs domain_inputs(const variation::VariationSource& env,
                                     double setpoint_c,
                                     variation::DiePoint lo,
                                     variation::DiePoint hi,
                                     std::size_t tdc_grid) {
  std::vector<variation::DiePoint> sites;
  for (std::size_t ix = 0; ix < tdc_grid; ++ix) {
    for (std::size_t iy = 0; iy < tdc_grid; ++iy) {
      const double fx =
          (static_cast<double>(ix) + 0.5) / static_cast<double>(tdc_grid);
      const double fy =
          (static_cast<double>(iy) + 0.5) / static_cast<double>(tdc_grid);
      sites.push_back({lo.x + fx * (hi.x - lo.x), lo.y + fy * (hi.y - lo.y)});
    }
  }
  const variation::DiePoint ro_site{0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y)};

  core::SimulationInputs inputs;
  inputs.e_ro = [&env, setpoint_c, ro_site](double t) {
    return setpoint_c * env.at(t, ro_site);
  };
  inputs.e_tdc = [&env, setpoint_c, sites](double t) {
    double worst = -1e300;
    for (const auto& p : sites) worst = std::max(worst, env.at(t, p));
    return setpoint_c * worst;
  };
  return inputs;
}

}  // namespace

MultiDomainResult run_partitioning(const MultiDomainConfig& config,
                                   const variation::VariationSource&
                                       environment,
                                   double fixed_period) {
  ROCLK_CHECK(config.side >= 1, "need at least one domain per side");
  ROCLK_CHECK(config.die_size_mm > 0.0, "die size must be positive");
  ROCLK_CHECK(config.transient_skip < config.cycles,
                "skip exceeds run length");

  MultiDomainResult result;
  result.domains = config.side * config.side;
  result.domain_size_mm =
      config.die_size_mm / static_cast<double>(config.side);

  chip::ClockDomainConfig tree = config.tree;
  tree.size_mm = result.domain_size_mm;
  result.cdn_delay_stages = chip::ClockDomainGeometry{tree}.cdn_delay_stages();

  // One ensemble lane per domain: the domains share the loop configuration
  // (set-point, CDN delay) and differ only in where on the die they sample
  // the environment, so the whole partitioning is one lane-parallel run
  // with streaming metrics instead of one simulator + trace per domain.
  result.per_domain.resize(result.domains);
  std::vector<core::SimulationInputs> lane_inputs;
  lane_inputs.reserve(result.domains);
  for (std::size_t d = 0; d < result.domains; ++d) {
    const std::size_t ix = d % config.side;
    const std::size_t iy = d / config.side;
    const double step = 1.0 / static_cast<double>(config.side);
    const variation::DiePoint lo{static_cast<double>(ix) * step,
                                 static_cast<double>(iy) * step};
    const variation::DiePoint hi{lo.x + step, lo.y + step};
    result.per_domain[d].centre = {0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y)};
    result.per_domain[d].cdn_delay_stages = result.cdn_delay_stages;
    lane_inputs.push_back(domain_inputs(environment, config.setpoint_c, lo,
                                        hi, config.tdc_grid));
  }

  core::LoopConfig loop;
  loop.setpoint_c = config.setpoint_c;
  loop.cdn_delay_stages = result.cdn_delay_stages;
  loop.mode = core::GeneratorMode::kControlledRo;
  const control::IirControlHardware prototype{control::paper_iir_config()};
  auto ensemble =
      core::EnsembleSimulator::uniform(loop, &prototype, result.domains);
  const auto block = core::sample_ensemble(
      lane_inputs, config.cycles, config.setpoint_c, /*parallel=*/true);
  const std::vector<RunMetrics> metrics =
      evaluate_ensemble(ensemble, block, {fixed_period},
                        config.transient_skip, /*parallel=*/true);
  for (std::size_t d = 0; d < result.domains; ++d) {
    result.per_domain[d].metrics = metrics[d];
  }

  double period_sum = 0.0;
  for (const auto& domain : result.per_domain) {
    result.worst_safety_margin = std::max(result.worst_safety_margin,
                                          domain.metrics.safety_margin);
    result.worst_relative_period =
        std::max(result.worst_relative_period,
                 domain.metrics.relative_adaptive_period);
    period_sum += domain.metrics.mean_period;
  }
  result.mean_period = period_sum / static_cast<double>(result.domains);
  return result;
}

std::vector<MultiDomainResult> partitioning_sweep(
    const MultiDomainConfig& base,
    const variation::VariationSource& environment, double fixed_period,
    std::span<const std::size_t> sides) {
  std::vector<MultiDomainResult> results;
  results.reserve(sides.size());
  for (std::size_t side : sides) {
    MultiDomainConfig config = base;
    config.side = side;
    results.push_back(run_partitioning(config, environment, fixed_period));
  }
  return results;
}

}  // namespace roclk::analysis
