#include "roclk/analysis/ensemble_metrics.hpp"

#include <algorithm>

#include "roclk/common/status.hpp"

namespace roclk::analysis {

MetricsReducer::MetricsReducer(std::size_t lanes, double fixed_period,
                               std::size_t skip)
    : MetricsReducer{std::vector<double>(lanes, fixed_period), skip} {}

MetricsReducer::MetricsReducer(std::vector<double> fixed_periods,
                               std::size_t skip)
    : accumulators_(fixed_periods.size()),
      fixed_periods_{std::move(fixed_periods)},
      skip_{skip} {
  ROCLK_CHECK(!fixed_periods_.empty(), "reducer needs at least one lane");
  for (double fixed : fixed_periods_) {
    ROCLK_CHECK(fixed > 0.0, "fixed period must be positive");
  }
}

void MetricsReducer::accumulate(const core::LaneSlice& slice) {
  ROCLK_CHECK(slice.first_lane + slice.width <= accumulators_.size(),
                "lane slice out of range");
  LaneAccumulator* const accs = accumulators_.data() + slice.first_lane;
  const double* const delta = slice.delta;
  const double* const t_dlv = slice.t_dlv;
  const double* const tau = slice.tau;
  const std::uint8_t* const violation = slice.violation;
  const std::uint8_t* const isolated = slice.isolated;
  for (std::size_t w = 0; w < slice.width; ++w) {
    LaneAccumulator& acc = accs[w];
    // An isolated lane's slice entries repeat its last good cycle; folding
    // them would weight the frozen values into the ensemble statistics.
    // The metrics therefore stop at the isolation point (the lane is
    // reported via EnsembleSimulator::isolated()).
    if (isolated != nullptr && isolated[w] != 0) {
      ++acc.seen;
      continue;
    }
    if (acc.seen++ < skip_) continue;
    // delta[n] = c - tau[n] is computed by the kernel with the identical
    // subtraction required_safety_margin performs, so folding it keeps the
    // margin bit-for-bit equal to the trace-based path.
    acc.worst_margin = std::max(acc.worst_margin, delta[w]);
    // RunningStats::add's Welford mean, without the m2 update the metrics
    // never consume.
    ++acc.period_n;
    acc.period_mean += (t_dlv[w] - acc.period_mean) /
                       static_cast<double>(acc.period_n);
    acc.tau_min = std::min(acc.tau_min, tau[w]);
    acc.tau_max = std::max(acc.tau_max, tau[w]);
    acc.violations += violation[w];
  }
}

std::size_t MetricsReducer::cycles_seen(std::size_t lane) const {
  return accumulators_.at(lane).seen;
}

RunMetrics MetricsReducer::metrics(std::size_t lane) const {
  const LaneAccumulator& acc = accumulators_.at(lane);
  // Same precondition as evaluate_run: the transient skip must leave at
  // least one sample.
  ROCLK_CHECK(skip_ < acc.seen, "transient skip longer than run");
  RunMetrics metrics;
  metrics.safety_margin = acc.worst_margin;
  metrics.mean_period = acc.period_mean;
  metrics.relative_adaptive_period =
      (metrics.mean_period + metrics.safety_margin) /
      fixed_periods_[lane];
  metrics.violations = acc.violations;
  metrics.tau_ripple = acc.tau_max - acc.tau_min;
  return metrics;
}

std::vector<RunMetrics> MetricsReducer::all() const {
  std::vector<RunMetrics> out;
  out.reserve(accumulators_.size());
  for (std::size_t lane = 0; lane < accumulators_.size(); ++lane) {
    out.push_back(metrics(lane));
  }
  return out;
}

std::vector<RunMetrics> evaluate_ensemble(
    core::EnsembleSimulator& ensemble, const core::EnsembleInputBlock& block,
    std::vector<double> fixed_periods, std::size_t skip, bool parallel) {
  return evaluate_ensemble(ensemble, block, std::move(fixed_periods), skip,
                           parallel ? &ThreadPool::shared() : nullptr);
}

std::vector<RunMetrics> evaluate_ensemble(
    core::EnsembleSimulator& ensemble, const core::EnsembleInputBlock& block,
    std::vector<double> fixed_periods, std::size_t skip, ThreadPool* pool) {
  const std::size_t lanes = ensemble.width();
  if (fixed_periods.size() == 1 && lanes > 1) {
    fixed_periods.assign(lanes, fixed_periods.front());
  }
  ROCLK_CHECK(fixed_periods.size() == lanes,
                "need one fixed period per lane (or one shared)");
  MetricsReducer reducer{std::move(fixed_periods), skip};
  ensemble.reset();
  ensemble.run(block, reducer, pool);
  return reducer.all();
}

std::vector<RunMetrics> evaluate_homogeneous_mc(
    core::EnsembleSimulator& ensemble, const signal::Waveform& waveform,
    std::span<const double> static_mu_stages, std::size_t cycles, double dt,
    std::vector<double> fixed_periods, std::size_t skip, bool parallel,
    std::size_t tile_cycles) {
  return evaluate_homogeneous_mc(ensemble, waveform, static_mu_stages,
                                 cycles, dt, std::move(fixed_periods), skip,
                                 parallel ? &ThreadPool::shared() : nullptr,
                                 tile_cycles);
}

std::vector<RunMetrics> evaluate_homogeneous_mc(
    core::EnsembleSimulator& ensemble, const signal::Waveform& waveform,
    std::span<const double> static_mu_stages, std::size_t cycles, double dt,
    std::vector<double> fixed_periods, std::size_t skip, ThreadPool* pool,
    std::size_t tile_cycles) {
  const std::size_t lanes = ensemble.width();
  ROCLK_CHECK(static_mu_stages.size() == lanes,
              "one mu per lane: got " << static_mu_stages.size()
                                      << " for " << lanes << " lanes");
  ROCLK_CHECK(dt > 0.0, "sampling period must be positive, got " << dt);
  ROCLK_CHECK(skip < cycles, "transient skip " << skip
                                               << " must leave at least one "
                                                  "of the "
                                               << cycles << " cycles");
  if (fixed_periods.size() == 1 && lanes > 1) {
    fixed_periods.assign(lanes, fixed_periods.front());
  }
  ROCLK_CHECK(fixed_periods.size() == lanes,
              "need one fixed period per lane (or one shared), got "
                  << fixed_periods.size() << " for " << lanes << " lanes");
  if (tile_cycles == 0) {
    // ~256 KiB of samples per tile (3 arrays of lanes doubles per cycle),
    // floored so per-tile dispatch overhead stays negligible.
    tile_cycles = std::max<std::size_t>(
        64, (256 * std::size_t{1024}) / (24 * lanes));
  }
  MetricsReducer reducer{std::move(fixed_periods), skip};
  ensemble.reset();
  core::EnsembleInputBlock tile;
  for (std::size_t start = 0; start < cycles; start += tile_cycles) {
    const std::size_t n = std::min(tile_cycles, cycles - start);
    core::sample_homogeneous_into(tile, waveform, static_mu_stages, n, dt,
                                  start);
    ensemble.run(tile, reducer, pool);
  }
  return reducer.all();
}

}  // namespace roclk::analysis
