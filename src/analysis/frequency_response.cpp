#include "roclk/analysis/frequency_response.hpp"

#include <cmath>
#include <complex>

#include "roclk/common/math.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/signal/spectrum.hpp"
#include "roclk/signal/transfer_function.hpp"

namespace roclk::analysis {

double analytic_error_gain(const signal::Polynomial& numerator,
                           const signal::Polynomial& denominator,
                           std::size_t cdn_delay_m, double te_over_c) {
  ROCLK_CHECK(te_over_c > 0.0, "perturbation period must be positive");
  const auto loop =
      signal::make_paper_closed_loop(numerator, denominator, cdn_delay_m);
  const double w = kTwoPi / te_over_c;  // one sample ~ one nominal period
  const std::complex<double> z = std::polar(1.0, w);
  // e reaches delta through (z^-1 - z^{-M-2}) shaped by H_delta (eq. 5).
  const std::complex<double> path =
      std::pow(z, -1.0) -
      std::pow(z, -static_cast<double>(cdn_delay_m) - 2.0);
  return std::abs(loop.to_error.evaluate(z) * path);
}

double measured_error_gain(SystemKind kind, double setpoint_c,
                           double tclk_stages, double amplitude_stages,
                           double te_over_c, std::size_t cycles) {
  ROCLK_CHECK(amplitude_stages > 0.0, "need a non-zero tone");
  if (cycles == 0) {
    cycles = std::max<std::size_t>(
        6000, static_cast<std::size_t>(30.0 * te_over_c));
  }
  const std::size_t skip = cycles / 3;

  core::LoopConfig cfg;
  cfg.setpoint_c = setpoint_c;
  cfg.cdn_delay_stages = tclk_stages;
  // Linear measurement: disable quantisers so small tones survive.
  cfg.quantize_lro = false;
  cfg.tdc_quantization = sensor::Quantization::kNone;
  std::unique_ptr<control::ControlBlock> controller;
  switch (kind) {
    case SystemKind::kIir:
      controller = std::make_unique<control::IirControlReference>();
      cfg.mode = core::GeneratorMode::kControlledRo;
      break;
    case SystemKind::kTeaTime:
      controller = std::make_unique<control::TeaTimeControl>();
      cfg.mode = core::GeneratorMode::kControlledRo;
      break;
    case SystemKind::kFreeRo:
      cfg.mode = core::GeneratorMode::kFreeRunningRo;
      break;
    case SystemKind::kFixedClock:
      cfg.mode = core::GeneratorMode::kFixedClock;
      break;
  }
  core::LoopSimulator sim{cfg, std::move(controller)};
  const auto inputs = core::SimulationInputs::harmonic(
      amplitude_stages, te_over_c * setpoint_c);
  const auto trace = sim.run_batch(inputs.sample(cycles, setpoint_c));
  const auto err = trace.timing_error(setpoint_c);
  const std::vector<double> steady(err.begin() + static_cast<std::ptrdiff_t>(skip), err.end());
  const double tone = signal::tone_amplitude(steady, 1.0 / te_over_c);
  return tone / amplitude_stages;
}

std::vector<FrequencyResponsePoint> error_rejection_curve(
    std::span<const double> te_over_c_grid, double tclk_over_c,
    double setpoint_c, double amplitude_stages) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  const auto m = static_cast<std::size_t>(llround_ties_away(tclk_over_c));
  std::vector<FrequencyResponsePoint> curve(te_over_c_grid.size());
  parallel_for(curve.size(), [&](std::size_t i) {
    const double te = te_over_c_grid[i];
    FrequencyResponsePoint& point = curve[i];
    point.te_over_c = te;
    point.analytic_gain = analytic_error_gain(n, d, m, te);
    point.measured_gain =
        measured_error_gain(SystemKind::kIir, setpoint_c,
                            tclk_over_c * setpoint_c, amplitude_stages, te);
  });
  return curve;
}

}  // namespace roclk::analysis
