#include "roclk/analysis/iir_design.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "roclk/common/math.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/constraints.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace roclk::analysis {

namespace {

/// Recursively builds non-increasing exponent sequences.
void enumerate_taps(const DesignSpaceOptions& options, int max_allowed,
                    std::vector<int>& current,
                    std::vector<std::vector<int>>& out) {
  if (current.size() >= options.min_taps) {
    out.push_back(current);
  }
  if (current.size() == options.max_taps) return;
  const int start = options.monotone_taps ? std::min(max_allowed,
                                                     options.max_exponent)
                                          : options.max_exponent;
  for (int e = start; e >= options.min_exponent; --e) {
    current.push_back(e);
    enumerate_taps(options, e, current, out);
    current.pop_back();
  }
}

/// True (and sets k_star) when the tap sum is an exact power of two so
/// that eq. 10 can be satisfied with a power-of-two k*.
bool eq10_feasible(const std::vector<int>& exponents, double& k_star) {
  double sum = 0.0;
  for (int e : exponents) sum += std::ldexp(1.0, e);
  const double log2_sum = std::log2(sum);
  if (std::fabs(log2_sum - round_ties_away(log2_sum)) > 1e-12) return false;
  k_star = 1.0 / sum;
  return true;
}

}  // namespace

IirCandidate score_candidate(const control::IirConfig& config,
                             const DesignSpaceOptions& options) {
  ROCLK_CHECK_OK(control::validate_iir_config(config));

  IirCandidate candidate;
  candidate.config = config;

  // Robustness: delay margin from the closed-loop characteristic.
  const auto [num, den] = control::iir_polynomials(config);
  candidate.max_stable_m =
      control::max_stable_cdn_delay(num, den, 128).value_or(0);

  // Velocity: settling after a mismatch step at t = 100 periods.
  {
    core::LoopConfig loop_cfg;
    loop_cfg.setpoint_c = options.setpoint_c;
    loop_cfg.cdn_delay_stages = options.cdn_delay_stages;
    core::LoopSimulator sim{
        loop_cfg, std::make_unique<control::IirControlHardware>(config)};
    core::SimulationInputs inputs;
    const double step_time = 100.0 * options.setpoint_c;
    const double step = options.mismatch_step;
    inputs.mu = [step_time, step](double t) {
      return t >= step_time ? step : 0.0;
    };
    const auto trace = sim.run(inputs, options.cycles);
    const auto err = trace.timing_error(options.setpoint_c);
    std::size_t settled_at = err.size();
    for (std::size_t n = err.size(); n-- > 100;) {
      if (std::fabs(err[n]) > 1.0) {
        settled_at = n + 1;
        break;
      }
    }
    candidate.settling_cycles = settled_at > 100 ? settled_at - 100 : 0;
  }

  // Smoothness: steady-state ripple under the scenario HoDV.
  {
    core::LoopConfig loop_cfg;
    loop_cfg.setpoint_c = options.setpoint_c;
    loop_cfg.cdn_delay_stages = options.cdn_delay_stages;
    core::LoopSimulator sim{
        loop_cfg, std::make_unique<control::IirControlHardware>(config)};
    const auto trace = sim.run(
        core::SimulationInputs::harmonic(options.hodv_amplitude,
                                         options.hodv_period),
        options.cycles);
    candidate.tau_ripple = trace.tau_ripple(options.skip);
  }
  return candidate;
}

std::vector<IirCandidate> enumerate_candidates(
    const DesignSpaceOptions& options) {
  ROCLK_CHECK(options.min_taps >= 1 &&
                    options.max_taps >= options.min_taps,
                "invalid tap-count range");
  ROCLK_CHECK(options.min_exponent <= options.max_exponent,
                "invalid exponent range");

  std::vector<std::vector<int>> tap_sets;
  std::vector<int> current;
  enumerate_taps(options, options.max_exponent, current, tap_sets);

  // The scoring scenario runs at M = t_clk / c; designs that cannot even
  // stabilise that loop are infeasible, not merely bad.
  const auto scenario_m = static_cast<std::size_t>(llround_ties_away(
      options.cdn_delay_stages / options.setpoint_c));

  std::vector<control::IirConfig> configs;
  for (const auto& exponents : tap_sets) {
    double k_star = 0.0;
    if (!eq10_feasible(exponents, k_star)) continue;
    control::IirConfig cfg;
    cfg.taps.clear();
    for (int e : exponents) cfg.taps.push_back(std::ldexp(1.0, e));
    cfg.k_star = k_star;
    cfg.k_exp = 8.0;
    if (!control::validate_iir_config(cfg).is_ok()) continue;
    const auto [num, den] = control::iir_polynomials(cfg);
    const auto margin = control::max_stable_cdn_delay(num, den, 128);
    if (!margin.has_value() || *margin < scenario_m) continue;
    configs.push_back(std::move(cfg));
  }

  std::vector<IirCandidate> candidates(configs.size());
  parallel_for(configs.size(), [&](std::size_t i) {
    candidates[i] = score_candidate(configs[i], options);
  });
  return candidates;
}

std::vector<IirCandidate> pareto_front(std::vector<IirCandidate> candidates) {
  auto dominates = [](const IirCandidate& a, const IirCandidate& b) {
    const bool no_worse = a.settling_cycles <= b.settling_cycles &&
                          a.tau_ripple <= b.tau_ripple &&
                          a.max_stable_m >= b.max_stable_m;
    const bool strictly_better = a.settling_cycles < b.settling_cycles ||
                                 a.tau_ripple < b.tau_ripple ||
                                 a.max_stable_m > b.max_stable_m;
    return no_worse && strictly_better;
  };
  std::vector<IirCandidate> front;
  for (auto& c : candidates) {
    bool dominated = false;
    for (const auto& other : candidates) {
      if (dominates(other, c)) {
        dominated = true;
        break;
      }
    }
    c.pareto = !dominated;
    if (c.pareto) front.push_back(c);
  }
  return front;
}

}  // namespace roclk::analysis
