#include "roclk/analysis/fault_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/common/check.hpp"

namespace roclk::analysis {

FaultSpan schedule_span(const fault::FaultSchedule& schedule) {
  FaultSpan span;
  if (schedule.empty()) return span;
  span.start = schedule.events().front().start_cycle;
  std::uint64_t end = 0;
  for (const fault::FaultEvent& event : schedule.events()) {
    span.start = std::min(span.start, event.start_cycle);
    if (event.permanent()) {
      span.end = std::nullopt;
      return span;
    }
    end = std::max(end, event.start_cycle + event.duration);
  }
  span.end = end;
  return span;
}

FaultRecoveryMetrics evaluate_fault_recovery(
    const core::SimulationTrace& trace, std::uint64_t fault_start,
    std::optional<std::uint64_t> fault_end,
    const FaultRecoveryConfig& config) {
  ROCLK_CHECK(!trace.empty(), "fault recovery needs a non-empty trace");
  ROCLK_CHECK(config.lock_cycles >= 1 && config.tail_cycles >= 1,
              "lock_cycles and tail_cycles must be >= 1");
  ROCLK_CHECK(config.lock_bound >= 0.0 && config.reconverge_bound >= 0.0,
              "bounds cannot be negative");
  const std::size_t n = trace.size();
  const std::vector<std::uint8_t>& violation = trace.violation_flags();
  const std::vector<double>& delta = trace.delta();

  FaultRecoveryMetrics metrics;
  for (std::size_t k = 0; k < n; ++k) {
    if (violation[k] == 0) continue;
    if (k < fault_start) {
      ++metrics.violations_before;
    } else if (!fault_end.has_value() || k < *fault_end) {
      ++metrics.violations_during;
    } else {
      ++metrics.violations_after;
    }
  }

  if (fault_end.has_value() && *fault_end < n) {
    // Time to relock: first streak of lock_cycles consecutive in-bound
    // deltas at or after the fault cleared.  The latency counts to the
    // streak's FIRST cycle — the loop was back in bound from there on.
    std::size_t streak = 0;
    for (std::size_t k = static_cast<std::size_t>(*fault_end); k < n; ++k) {
      streak = std::fabs(delta[k]) <= config.lock_bound ? streak + 1 : 0;
      if (streak >= config.lock_cycles) {
        metrics.relocked = true;
        metrics.relock_latency =
            k + 1 - config.lock_cycles - static_cast<std::size_t>(*fault_end);
        break;
      }
    }
  }

  // Re-convergence: the type-1 property restored — every tail sample's
  // adaptation error rounds to zero.
  const std::size_t tail = std::min(config.tail_cycles, n);
  double tail_max = 0.0;
  for (std::size_t k = n - tail; k < n; ++k) {
    tail_max = std::max(tail_max, std::fabs(delta[k]));
  }
  metrics.tail_max_abs_delta = tail_max;
  metrics.reconverged = tail_max <= config.reconverge_bound;
  return metrics;
}

FaultRecoveryMetrics evaluate_fault_recovery(
    const core::SimulationTrace& trace, const fault::FaultSchedule& schedule,
    const FaultRecoveryConfig& config) {
  const FaultSpan span = schedule_span(schedule);
  return evaluate_fault_recovery(trace, span.start, span.end, config);
}

HardeningVerdict compare_hardening(const core::SimulationTrace& guarded,
                                   const core::SimulationTrace& baseline,
                                   const fault::FaultSchedule& schedule,
                                   const FaultRecoveryConfig& config) {
  return HardeningVerdict{
      evaluate_fault_recovery(guarded, schedule, config),
      evaluate_fault_recovery(baseline, schedule, config),
  };
}

}  // namespace roclk::analysis
