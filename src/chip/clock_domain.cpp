#include "roclk/chip/clock_domain.hpp"

#include <cmath>

#include "roclk/common/status.hpp"

namespace roclk::chip {

ClockDomainGeometry::ClockDomainGeometry(ClockDomainConfig config)
    : config_{config} {
  ROCLK_CHECK(config_.size_mm > 0.0, "domain size must be positive");
  ROCLK_CHECK(config_.max_unbuffered_mm > 0.0,
                "unbuffered segment length must be positive");
  ROCLK_CHECK(config_.wire_delay_stages_per_mm >= 0.0,
                "wire delay cannot be negative");
}

std::size_t ClockDomainGeometry::tree_levels() const {
  // An H-tree halves the covered side length per level; stop when a
  // segment is short enough to leave unbuffered.
  std::size_t levels = 0;
  double span = config_.size_mm;
  while (span > config_.max_unbuffered_mm) {
    span /= 2.0;
    ++levels;
  }
  return levels;
}

double ClockDomainGeometry::cdn_delay_stages() const {
  // Source-to-leaf path: half the side per level (Manhattan), each level
  // rebuffered.  Wire delay accumulates along the total routed length.
  double delay = 0.0;
  double span = config_.size_mm;
  for (std::size_t level = 0; level < tree_levels(); ++level) {
    span /= 2.0;
    delay += config_.buffer_delay_stages +
             span * config_.wire_delay_stages_per_mm;
  }
  // Final unbuffered stub.
  delay += span * config_.wire_delay_stages_per_mm;
  return delay;
}

double ClockDomainGeometry::max_domain_size_mm(
    double perturbation_period_stages, const ClockDomainConfig& config) {
  ROCLK_CHECK(perturbation_period_stages > 0.0,
                "perturbation period must be positive");
  const double budget = perturbation_period_stages / 6.0;  // t_clk < T/6
  // Binary search the monotonic size -> delay map.
  double lo = 1e-3;
  double hi = 64.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    ClockDomainConfig c = config;
    c.size_mm = mid;
    if (ClockDomainGeometry{c}.cdn_delay_stages() <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace roclk::chip
