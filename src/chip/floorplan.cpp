#include "roclk/chip/floorplan.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "roclk/common/status.hpp"
#include "roclk/common/stream_key.hpp"

namespace roclk::chip {

Floorplan Floorplan::random_paths(std::size_t n, double nominal_depth,
                                  StreamKey key) {
  ROCLK_CHECK(nominal_depth > 0.0, "path depth must be positive");
  Floorplan fp;
  for (std::size_t i = 0; i < n; ++i) {
    CounterRng rng{key.at(i)};
    CriticalPath path;
    path.location = {rng.uniform(), rng.uniform()};
    path.depth_stages = nominal_depth * rng.uniform(0.9, 1.1);
    std::ostringstream os;
    os << "cp" << i;
    path.name = os.str();
    fp.add_path(std::move(path));
  }
  return fp;
}

Floorplan Floorplan::random_paths(std::size_t n, double nominal_depth,
                                  std::uint64_t seed) {
  return random_paths(n, nominal_depth,
                      StreamKey{seed}.split("chip.floorplan"));
}

Floorplan& Floorplan::add_path(CriticalPath path) {
  ROCLK_CHECK(path.depth_stages > 0.0, "path depth must be positive");
  paths_.push_back(std::move(path));
  return *this;
}

Floorplan& Floorplan::add_sensor(SensorSite site) {
  sensors_.push_back(std::move(site));
  return *this;
}

Floorplan& Floorplan::add_sensor_grid(std::size_t grid) {
  ROCLK_CHECK(grid >= 1, "sensor grid must be at least 1x1");
  for (std::size_t ix = 0; ix < grid; ++ix) {
    for (std::size_t iy = 0; iy < grid; ++iy) {
      SensorSite site;
      site.location = {
          (static_cast<double>(ix) + 0.5) / static_cast<double>(grid),
          (static_cast<double>(iy) + 0.5) / static_cast<double>(grid)};
      std::ostringstream os;
      os << "tdc" << ix << "_" << iy;
      site.name = os.str();
      add_sensor(std::move(site));
    }
  }
  return *this;
}

double Floorplan::path_delay(const CriticalPath& path,
                             const variation::VariationSource& source,
                             double t) const {
  return path.depth_stages * (1.0 + source.at(t, path.location));
}

double Floorplan::worst_path_delay(const variation::VariationSource& source,
                                   double t) const {
  ROCLK_CHECK(!paths_.empty(), "floorplan has no paths");
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& path : paths_) {
    worst = std::max(worst, path_delay(path, source, t));
  }
  return worst;
}

std::size_t Floorplan::worst_path_index(
    const variation::VariationSource& source, double t) const {
  ROCLK_CHECK(!paths_.empty(), "floorplan has no paths");
  std::size_t best = 0;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const double d = path_delay(paths_[i], source, t);
    if (d > worst) {
      worst = d;
      best = i;
    }
  }
  return best;
}

std::size_t Floorplan::nearest_sensor(variation::DiePoint p) const {
  ROCLK_CHECK(!sensors_.empty(), "floorplan has no sensors");
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    const double dx = sensors_[i].location.x - p.x;
    const double dy = sensors_[i].location.y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

double Floorplan::worst_sensor_blind_spot(
    const variation::VariationSource& source, double t) const {
  ROCLK_CHECK(!paths_.empty() && !sensors_.empty(),
                "need paths and sensors");
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& path : paths_) {
    const auto sensor = sensors_[nearest_sensor(path.location)];
    const double residual =
        source.at(t, path.location) - source.at(t, sensor.location);
    worst = std::max(worst, residual);
  }
  return worst;
}

}  // namespace roclk::chip
