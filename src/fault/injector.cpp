#include "roclk/fault/injector.hpp"

namespace roclk::fault {

FaultInjector::FaultInjector(const FaultSchedule& schedule)
    : schedule_{schedule} {
  active_.reserve(schedule_.size());
}

void FaultInjector::reset() {
  next_ = 0;
  active_.clear();
}

CycleFaults FaultInjector::begin_cycle(std::uint64_t cycle) {
  const std::span<const FaultEvent> events = schedule_.events();

  // Start events whose window opened (sorted by start, so one compare per
  // idle cycle).
  while (next_ < events.size() && events[next_].start_cycle <= cycle) {
    active_.push_back(next_);
    ++next_;
  }
  // Retire expired events; erase preserves order, so overlapping additive
  // events fold in schedule order every cycle.
  std::erase_if(active_, [&](std::size_t i) {
    return !events[i].active_at(cycle);
  });

  CycleFaults faults;
  if (active_.empty()) return faults;
  for (const std::size_t i : active_) {
    const FaultEvent& event = events[i];
    switch (event.kind) {
      case FaultKind::kTdcStuckAt:
        faults.tau_stuck = true;
        faults.tau_stuck_value = event.magnitude;
        break;
      case FaultKind::kTdcDroppedSample:
        faults.tau_dropped = true;
        break;
      case FaultKind::kTdcGlitch:
        faults.tau_glitch += event.magnitude;
        break;
      case FaultKind::kRoStageFailure:
        faults.ro_offset += event.magnitude;
        break;
      case FaultKind::kCdnDeliveryDrop:
        faults.cdn_drop = true;
        break;
      case FaultKind::kVoltageDroop:
        faults.droop += event.magnitude;
        break;
    }
  }
  faults.any = true;
  return faults;
}

}  // namespace roclk::fault
