#include "roclk/fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "roclk/common/check.hpp"
#include "roclk/common/stream_key.hpp"

namespace roclk::fault {

Status FaultSchedule::validate_event(const FaultEvent& event) {
  if (!std::isfinite(event.magnitude)) {
    std::ostringstream os;
    os << to_string(event.kind) << " magnitude must be finite, got "
       << event.magnitude;
    return Status::invalid_argument(os.str());
  }
  switch (event.kind) {
    case FaultKind::kTdcStuckAt:
      if (event.magnitude < 0.0) {
        std::ostringstream os;
        os << "a TDC cannot present a negative code; stuck-at value "
           << event.magnitude << " is unreachable hardware state";
        return Status::invalid_argument(os.str());
      }
      break;
    case FaultKind::kTdcDroppedSample:
    case FaultKind::kCdnDeliveryDrop:
      if (event.magnitude != 0.0) {
        std::ostringstream os;
        os << to_string(event.kind) << " takes no magnitude, got "
           << event.magnitude << " (it would be silently ignored)";
        return Status::invalid_argument(os.str());
      }
      break;
    case FaultKind::kTdcGlitch:
    case FaultKind::kRoStageFailure:
    case FaultKind::kVoltageDroop:
      break;
  }
  return Status::ok();
}

FaultSchedule& FaultSchedule::add(const FaultEvent& event) {
  ROCLK_CHECK_OK(validate_event(event));
  // Insert keeping start order; stable for equal starts so a schedule's
  // replay order equals its build order.
  const auto at = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.start_cycle < b.start_cycle;
      });
  events_.insert(at, event);
  return *this;
}

bool FaultSchedule::has_permanent_event() const {
  return std::any_of(events_.begin(), events_.end(),
                     [](const FaultEvent& e) { return e.permanent(); });
}

FaultSchedule FaultSchedule::random(std::uint64_t seed,
                                    const RandomFaultSpec& spec) {
  return random(StreamKey{seed}.split("fault.schedule"), spec);
}

FaultSchedule FaultSchedule::random(StreamKey key,
                                    const RandomFaultSpec& spec) {
  ROCLK_CHECK(spec.horizon_cycles > spec.min_start,
              "fault horizon (" << spec.horizon_cycles
                                << " cycles) must exceed min_start ("
                                << spec.min_start << ")");
  ROCLK_CHECK(spec.max_duration >= 1,
              "max_duration must be >= 1, got " << spec.max_duration);
  static constexpr FaultKind kAllKinds[kFaultKindCount] = {
      FaultKind::kTdcStuckAt,      FaultKind::kTdcDroppedSample,
      FaultKind::kTdcGlitch,       FaultKind::kRoStageFailure,
      FaultKind::kCdnDeliveryDrop, FaultKind::kVoltageDroop,
  };
  std::vector<FaultKind> kinds = spec.kinds;
  if (kinds.empty()) kinds.assign(std::begin(kAllKinds), std::end(kAllKinds));

  // Every event owns the substream key.at(i) with a fixed draw order
  // (kind, start, duration, magnitude), so the schedule is a pure
  // function of (key, spec) and a prefix never depends on event_count.
  FaultSchedule schedule;
  for (std::size_t i = 0; i < spec.event_count; ++i) {
    CounterRng rng{key.at(i)};
    FaultEvent event;
    event.kind = kinds[rng.uniform_int(kinds.size())];
    event.start_cycle =
        spec.min_start +
        rng.uniform_int(spec.horizon_cycles - spec.min_start);
    event.duration = 1 + rng.uniform_int(spec.max_duration);
    const double draw = rng.uniform();
    switch (event.kind) {
      case FaultKind::kTdcStuckAt:
        event.magnitude =
            spec.stuck_min + (spec.stuck_max - spec.stuck_min) * draw;
        break;
      case FaultKind::kTdcGlitch:
        event.magnitude =
            spec.glitch_min + (spec.glitch_max - spec.glitch_min) * draw;
        break;
      case FaultKind::kRoStageFailure:
        event.magnitude =
            spec.ro_step_min + (spec.ro_step_max - spec.ro_step_min) * draw;
        break;
      case FaultKind::kVoltageDroop:
        event.magnitude =
            spec.droop_min + (spec.droop_max - spec.droop_min) * draw;
        break;
      case FaultKind::kTdcDroppedSample:
      case FaultKind::kCdnDeliveryDrop:
        event.magnitude = 0.0;  // the draw above still advanced the stream
        break;
    }
    schedule.add(event);
  }
  return schedule;
}

}  // namespace roclk::fault
