#include "roclk/signal/transfer_function.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "roclk/common/math.hpp"
#include "roclk/signal/roots.hpp"

namespace roclk::signal {

TransferFunction::TransferFunction(Polynomial numerator,
                                   Polynomial denominator)
    : num_{std::move(numerator)}, den_{std::move(denominator)} {
  bool all_zero = true;
  for (double c : den_.coefficients()) {
    if (c != 0.0) {
      all_zero = false;
      break;
    }
  }
  ROCLK_CHECK(!all_zero, "transfer function denominator is zero");
}

std::complex<double> TransferFunction::evaluate(std::complex<double> z) const {
  return num_.evaluate(z) / den_.evaluate(z);
}

std::complex<double> TransferFunction::frequency_response(double w) const {
  return evaluate(std::polar(1.0, w));
}

std::optional<double> TransferFunction::dc_gain() const {
  const double d1 = den_.at_one();
  if (std::fabs(d1) < 1e-12) return std::nullopt;
  return num_.at_one() / d1;
}

std::optional<double> TransferFunction::step_final_value() const {
  // FVT: lim (1 - z^-1) H(z) / (1 - z^-1) = H(1) when the limit exists.
  return dc_gain();
}

TransferFunction TransferFunction::series(const TransferFunction& other) const {
  return {num_ * other.num_, den_ * other.den_};
}

TransferFunction TransferFunction::parallel(
    const TransferFunction& other) const {
  return {num_ * other.den_ + other.num_ * den_, den_ * other.den_};
}

TransferFunction TransferFunction::feedback(
    const TransferFunction& loop) const {
  // H / (1 + H G) = (N Dg) / (D Dg + N Ng)
  return {num_ * loop.den_, den_ * loop.den_ + num_ * loop.num_};
}

Result<std::vector<std::complex<double>>> TransferFunction::poles() const {
  Polynomial d = den_;
  d.trim();
  return find_roots(d.ascending_in_z());
}

Result<std::vector<std::complex<double>>> TransferFunction::zeros() const {
  Polynomial n = num_;
  n.trim();
  if (n.degree() == 0 && n.coefficient(0) == 0.0) {
    return std::vector<std::complex<double>>{};
  }
  return find_roots(n.ascending_in_z());
}

Result<Stability> TransferFunction::stability(double unit_circle_tol) const {
  auto poles_result = poles();
  if (!poles_result.is_ok()) return poles_result.status();
  const auto& ps = poles_result.value();

  bool marginal = false;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double mag = std::abs(ps[i]);
    if (mag > 1.0 + unit_circle_tol) return Stability::kUnstable;
    if (mag >= 1.0 - unit_circle_tol) {
      // On the circle: unstable if repeated (another pole within tol).
      for (std::size_t j = 0; j < ps.size(); ++j) {
        if (i == j) continue;
        if (std::abs(ps[i] - ps[j]) < 10 * unit_circle_tol) {
          return Stability::kUnstable;
        }
      }
      marginal = true;
    }
  }
  return marginal ? Stability::kMarginallyStable : Stability::kStable;
}

std::vector<double> TransferFunction::impulse_response(std::size_t n) const {
  // Long division: y[k] = (num[k] - sum_{i>=1} den[i] y[k-i]) / den[0],
  // where den[0] is the first nonzero denominator coefficient (a shared
  // leading delay shifts the response, handled by normalize() semantics).
  Polynomial num = num_;
  Polynomial den = den_;
  // Strip the common leading delay.
  std::size_t lead = 0;
  while (den.coefficient(lead) == 0.0) ++lead;
  ROCLK_CHECK(lead <= den.degree(), "zero denominator");

  std::vector<double> y(n, 0.0);
  const double d0 = den.coefficient(lead);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = num.coefficient(k + lead);
    for (std::size_t i = 1; i + lead <= den.degree(); ++i) {
      if (i > k) break;
      acc -= den.coefficient(lead + i) * y[k - i];
    }
    y[k] = acc / d0;
  }
  return y;
}

std::vector<double> TransferFunction::step_response(std::size_t n) const {
  std::vector<double> h = impulse_response(n);
  double acc = 0.0;
  for (double& v : h) {
    acc += v;
    v = acc;
  }
  return h;
}

TransferFunction& TransferFunction::normalize() {
  num_.trim();
  den_.trim();
  // Cancel a shared pure delay z^-k.
  std::size_t lead_n = 0;
  while (lead_n < num_.degree() && num_.coefficient(lead_n) == 0.0) ++lead_n;
  std::size_t lead_d = 0;
  while (lead_d < den_.degree() && den_.coefficient(lead_d) == 0.0) ++lead_d;
  const std::size_t shared = std::min(lead_n, lead_d);
  if (shared > 0) {
    auto shift = [shared](const Polynomial& p) {
      const auto& c = p.coefficients();
      std::vector<double> out(c.begin() + static_cast<std::ptrdiff_t>(shared),
                              c.end());
      return Polynomial{std::move(out)};
    };
    num_ = shift(num_);
    den_ = shift(den_);
  }
  // Scale so the first nonzero denominator coefficient is 1.
  std::size_t lead = 0;
  while (lead < den_.degree() && den_.coefficient(lead) == 0.0) ++lead;
  const double d0 = den_.coefficient(lead);
  if (d0 != 0.0 && d0 != 1.0) {
    num_ = num_ * (1.0 / d0);
    den_ = den_ * (1.0 / d0);
  }
  return *this;
}

std::string TransferFunction::to_string() const {
  std::ostringstream os;
  os << "(" << num_.to_string() << ") / (" << den_.to_string() << ")";
  return os.str();
}

PaperClosedLoop make_paper_closed_loop(const Polynomial& controller_numerator,
                                       const Polynomial& controller_denominator,
                                       std::size_t cdn_delay_m) {
  // Loop delay: RO update (z^-1) + CDN (z^-M) + TDC measurement (z^-1).
  const Polynomial loop_delay = Polynomial::delay(cdn_delay_m + 2);
  Polynomial closed_den =
      controller_denominator + controller_numerator * loop_delay;
  TransferFunction to_lro{controller_numerator, closed_den};
  TransferFunction to_delta{controller_denominator, closed_den};
  return {std::move(to_lro), std::move(to_delta)};
}

std::vector<double> paper_combined_input(std::span<const double> setpoint,
                                         std::span<const double> homogeneous,
                                         std::span<const double> mismatch,
                                         std::size_t cdn_delay_m) {
  const std::size_t n =
      std::max({setpoint.size(), homogeneous.size(), mismatch.size()});
  auto at = [](std::span<const double> xs, std::ptrdiff_t i) {
    return (i >= 0 && static_cast<std::size_t>(i) < xs.size()) ? xs[static_cast<std::size_t>(i)] : 0.0;
  };
  std::vector<double> p(n, 0.0);
  const auto m = static_cast<std::ptrdiff_t>(cdn_delay_m);
  for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(n); ++k) {
    // p[k] = c[k] + e[k-1] - e[k-M-2] - mu[k-M-2]   (eq. 5 text)
    p[static_cast<std::size_t>(k)] = at(setpoint, k) + at(homogeneous, k - 1) -
                                     at(homogeneous, k - m - 2) -
                                     at(mismatch, k - m - 2);
  }
  return p;
}

}  // namespace roclk::signal
