#include "roclk/signal/waveform.hpp"

#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::signal {

std::vector<double> Waveform::sample(std::size_t n, double step,
                                     double offset) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(at(offset + static_cast<double>(k) * step));
  }
  return out;
}

SineWaveform::SineWaveform(double amplitude, double period, double phase)
    : amplitude_{amplitude}, period_{period}, phase_{phase} {
  ROCLK_CHECK(period > 0.0, "sine period must be positive");
}

double SineWaveform::at(double t) const {
  return amplitude_ * std::sin(kTwoPi * t / period_ + phase_);
}

TrianglePulseWaveform::TrianglePulseWaveform(double amplitude, double start,
                                             double duration)
    : amplitude_{amplitude}, start_{start}, duration_{duration} {
  ROCLK_CHECK(duration > 0.0, "pulse duration must be positive");
}

double TrianglePulseWaveform::at(double t) const {
  const double x = (t - start_) / duration_;
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return amplitude_ * (x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x));
}

StepWaveform::StepWaveform(double amplitude, double start)
    : amplitude_{amplitude}, start_{start} {}

double StepWaveform::at(double t) const {
  return t >= start_ ? amplitude_ : 0.0;
}

RampWaveform::RampWaveform(double slope, double start, double saturation)
    : slope_{slope}, start_{start}, saturation_{saturation} {}

double RampWaveform::at(double t) const {
  if (t <= start_) return 0.0;
  const double v = slope_ * (t - start_);
  if (slope_ >= 0.0) return std::min(v, saturation_);
  return std::max(v, saturation_);
}

SquareWaveform::SquareWaveform(double amplitude, double period, double phase)
    : amplitude_{amplitude}, period_{period}, phase_{phase} {
  ROCLK_CHECK(period > 0.0, "square period must be positive");
}

double SquareWaveform::at(double t) const {
  const double cycle = positive_fmod(t / period_ + phase_, 1.0);
  return cycle < 0.5 ? amplitude_ : -amplitude_;
}

HoldNoiseWaveform::HoldNoiseWaveform(double stddev, double hold,
                                     StreamKey key)
    : stddev_{stddev}, hold_{hold}, key_{key} {
  ROCLK_CHECK(hold > 0.0, "hold interval must be positive");
}

HoldNoiseWaveform::HoldNoiseWaveform(double stddev, double hold,
                                     std::uint64_t seed)
    : HoldNoiseWaveform{stddev, hold,
                        StreamKey{seed}.split("signal.hold_noise")} {}

double HoldNoiseWaveform::at(double t) const {
  // Stateless: each hold slot owns the substream key.at(slot) so
  // evaluation order is irrelevant (the edge simulator samples at
  // non-monotonic instants during replay).
  const auto slot = static_cast<std::int64_t>(std::floor(t / hold_));
  CounterRng rng{key_.at(static_cast<std::uint64_t>(slot))};
  return rng.normal(0.0, stddev_);
}

CompositeWaveform::CompositeWaveform(const CompositeWaveform& other) {
  parts_.reserve(other.parts_.size());
  for (const auto& p : other.parts_) {
    parts_.push_back({p.waveform->clone(), p.scale});
  }
}

CompositeWaveform& CompositeWaveform::operator=(
    const CompositeWaveform& other) {
  if (this == &other) return *this;
  CompositeWaveform copy{other};
  parts_ = std::move(copy.parts_);
  return *this;
}

CompositeWaveform& CompositeWaveform::add(std::unique_ptr<Waveform> w,
                                          double scale) {
  ROCLK_CHECK(w != nullptr, "null waveform");
  parts_.push_back({std::move(w), scale});
  return *this;
}

double CompositeWaveform::at(double t) const {
  double acc = 0.0;
  for (const auto& p : parts_) acc += p.scale * p.waveform->at(t);
  return acc;
}

std::unique_ptr<Waveform> CompositeWaveform::clone() const {
  return std::make_unique<CompositeWaveform>(*this);
}

}  // namespace roclk::signal
