#include "roclk/signal/spectrum.hpp"

#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::signal {

Result<std::vector<std::complex<double>>> fft(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    return Status::invalid_argument("FFT size must be a power of two");
  }
  std::vector<std::complex<double>> a(xs.begin(), xs.end());
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = a[i + k];
        const auto v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  return a;
}

std::vector<std::complex<double>> dft(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double angle =
          -kTwoPi * static_cast<double>(k) * static_cast<double>(i) /
          static_cast<double>(n);
      acc += xs[i] * std::complex<double>{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

std::complex<double> goertzel(std::span<const double> xs, double frequency) {
  const double w = kTwoPi * frequency;
  const double coeff = 2.0 * std::cos(w);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (double x : xs) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  // X(f) = (s_{N-1} - e^{-jw} s_{N-2}) e^{-jw (N-1)}: the trailing rotation
  // re-references the phase to sample 0, matching the DFT definition.
  const std::complex<double> y{s_prev - std::cos(w) * s_prev2,
                               std::sin(w) * s_prev2};
  const double n1 = static_cast<double>(xs.size()) - 1.0;
  return y * std::complex<double>{std::cos(w * n1), -std::sin(w * n1)};
}

double tone_amplitude(std::span<const double> xs, double frequency) {
  if (xs.empty()) return 0.0;
  const auto x = goertzel(xs, frequency);
  return 2.0 * std::abs(x) / static_cast<double>(xs.size());
}

std::size_t dominant_bin(std::span<const double> xs) {
  const auto spectrum = dft(xs);
  std::size_t best = 0;
  double best_mag = -1.0;
  for (std::size_t k = 1; k < spectrum.size() / 2 + 1; ++k) {
    const double mag = std::abs(spectrum[k]);
    if (mag > best_mag) {
      best_mag = mag;
      best = k;
    }
  }
  return best;
}

}  // namespace roclk::signal
