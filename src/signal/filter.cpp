#include "roclk/signal/filter.hpp"

#include <algorithm>
#include <cmath>

namespace roclk::signal {

LinearFilter::LinearFilter(std::vector<double> b, std::vector<double> a)
    : b_{std::move(b)}, a_{std::move(a)} {
  ROCLK_CHECK(!a_.empty() && a_[0] != 0.0,
                "denominator leading coefficient must be non-zero");
  if (b_.empty()) b_ = {0.0};
  const double a0 = a_[0];
  for (double& c : b_) c /= a0;
  for (double& c : a_) c /= a0;
  state_.assign(std::max(a_.size(), b_.size()), 0.0);
}

LinearFilter::LinearFilter(const TransferFunction& tf)
    : LinearFilter(tf.numerator().coefficients(),
                   tf.denominator().coefficients()) {}

double LinearFilter::step(double x) {
  // Direct form II transposed:
  //   y = b0 x + s0
  //   s_i = b_{i+1} x - a_{i+1} y + s_{i+1}
  const double y = b_[0] * x + state_[0];
  const std::size_t n = state_.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double bi = (i + 1) < b_.size() ? b_[i + 1] : 0.0;
    const double ai = (i + 1) < a_.size() ? a_[i + 1] : 0.0;
    state_[i] = bi * x - ai * y + state_[i + 1];
  }
  if (n >= 1) {
    const double bi = n < b_.size() ? b_[n] : 0.0;
    const double ai = n < a_.size() ? a_[n] : 0.0;
    state_[n - 1] = bi * x - ai * y;
  }
  return y;
}

std::vector<double> LinearFilter::process(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  return out;
}

void LinearFilter::reset() {
  std::fill(state_.begin(), state_.end(), 0.0);
}

ExponentialSmoother::ExponentialSmoother(double alpha) : alpha_{alpha} {
  ROCLK_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

double ExponentialSmoother::step(double x) {
  if (!primed_) {
    y_ = x;
    primed_ = true;
  } else {
    y_ += alpha_ * (x - y_);
  }
  return y_;
}

void ExponentialSmoother::reset(double initial) {
  y_ = initial;
  primed_ = false;
}

SlidingMinimum::SlidingMinimum(std::size_t window) : window_{window} {
  ROCLK_CHECK(window > 0, "window must be positive");
}

double SlidingMinimum::step(double x) {
  // Drop entries that can never be the minimum again.
  while (deque_.size() > head_ && deque_.back().value >= x) {
    deque_.pop_back();
  }
  deque_.push_back({next_index_, x});
  ++next_index_;
  // Expire entries that slid out of the window.
  while (deque_[head_].index + window_ <= next_index_ - 1) {
    ++head_;
  }
  // Compact occasionally so memory stays bounded.
  if (head_ > 64 && head_ * 2 > deque_.size()) {
    deque_.erase(deque_.begin(),
                 deque_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return deque_[head_].value;
}

void SlidingMinimum::reset() {
  deque_.clear();
  head_ = 0;
  next_index_ = 0;
}

}  // namespace roclk::signal
