#include "roclk/signal/roots.hpp"

#include <algorithm>
#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::signal {

namespace {

/// Horner evaluation of p and p' at x (coefficients highest power first).
void evaluate_with_derivative(std::span<const std::complex<double>> c,
                              std::complex<double> x,
                              std::complex<double>& p,
                              std::complex<double>& dp) {
  p = c[0];
  dp = {0.0, 0.0};
  for (std::size_t i = 1; i < c.size(); ++i) {
    dp = dp * x + p;
    p = p * x + c[i];
  }
}

}  // namespace

Result<std::vector<std::complex<double>>> find_roots(
    std::span<const double> coefficients_high_first, RootFindOptions options) {
  // Strip leading (highest power) zeros.
  std::size_t first = 0;
  while (first < coefficients_high_first.size() &&
         coefficients_high_first[first] == 0.0) {
    ++first;
  }
  if (coefficients_high_first.size() - first < 1) {
    return Status::invalid_argument("empty polynomial");
  }
  const std::size_t n = coefficients_high_first.size() - first - 1;  // degree
  if (n == 0) return std::vector<std::complex<double>>{};

  std::vector<std::complex<double>> coeffs(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    coeffs[i] = coefficients_high_first[first + i];
  }

  // Initial guesses on a circle whose radius follows the Cauchy bound,
  // slightly perturbed in angle to break symmetry.
  double max_ratio = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    max_ratio = std::max(max_ratio, std::abs(coeffs[i] / coeffs[0]));
  }
  const double radius = 1.0 + max_ratio;
  std::vector<std::complex<double>> roots(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        kTwoPi * (static_cast<double>(i) + 0.353) / static_cast<double>(n);
    roots[i] = std::polar(radius * 0.7, angle);
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_step = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> p;
      std::complex<double> dp;
      evaluate_with_derivative(coeffs, roots[i], p, dp);
      if (std::abs(p) < options.tolerance) continue;
      // Aberth correction: Newton step divided by (1 - newton * sum_j).
      const std::complex<double> newton =
          dp == std::complex<double>{0.0, 0.0} ? std::complex<double>{1e-3, 1e-3}
                                               : p / dp;
      std::complex<double> repulsion{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto diff = roots[i] - roots[j];
        if (std::abs(diff) < 1e-300) continue;
        repulsion += 1.0 / diff;
      }
      const std::complex<double> denom = 1.0 - newton * repulsion;
      const std::complex<double> step =
          std::abs(denom) < 1e-300 ? newton : newton / denom;
      roots[i] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < options.tolerance) {
      return roots;
    }
  }

  // Accept if residuals are small even when step criterion was not met.
  double worst = 0.0;
  for (const auto& r : roots) {
    std::complex<double> p;
    std::complex<double> dp;
    evaluate_with_derivative(coeffs, r, p, dp);
    worst = std::max(worst, std::abs(p));
  }
  if (worst < 1e-6 * std::abs(coeffs[0])) return roots;
  return Status::internal("Aberth iteration did not converge");
}

double spectral_radius(std::span<const std::complex<double>> roots) {
  double r = 0.0;
  for (const auto& root : roots) r = std::max(r, std::abs(root));
  return r;
}

}  // namespace roclk::signal
