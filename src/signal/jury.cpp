#include "roclk/signal/jury.hpp"

#include <cmath>
#include <sstream>

namespace roclk::signal {

Result<JuryResult> jury_test(std::span<const double> coefficients_high_first) {
  // Strip leading zeros.
  std::size_t first = 0;
  while (first < coefficients_high_first.size() &&
         coefficients_high_first[first] == 0.0) {
    ++first;
  }
  const std::size_t len = coefficients_high_first.size() - first;
  if (len == 0) return Status::invalid_argument("empty polynomial");

  std::vector<double> a(coefficients_high_first.begin() +
                            static_cast<std::ptrdiff_t>(first),
                        coefficients_high_first.end());
  const std::size_t n = a.size() - 1;  // degree
  JuryResult result;
  result.table.push_back(a);

  if (n == 0) {
    result.stable = true;  // constant: no roots
    return result;
  }

  // Normalize so a[0] > 0 (multiplying by -1 keeps the roots).
  if (a[0] < 0.0) {
    for (double& c : a) c = -c;
  }

  // Necessary conditions.
  double p1 = 0.0;  // P(1)
  for (double c : a) p1 += c;
  if (!(p1 > 0.0)) {
    result.failed_condition = "P(1) > 0 violated (root at or beyond z = 1)";
    return result;
  }
  double pm1 = 0.0;  // (-1)^n P(-1)
  for (std::size_t i = 0; i <= n; ++i) {
    pm1 += a[i] * ((n - i) % 2 == 0 ? 1.0 : -1.0);
  }
  if (n % 2 == 1) pm1 = -pm1;
  if (!(pm1 > 0.0)) {
    result.failed_condition = "(-1)^n P(-1) > 0 violated";
    return result;
  }
  if (!(std::fabs(a[n]) < a[0])) {
    result.failed_condition = "|a_n| < a_0 violated";
    return result;
  }

  // Jury table reduction in the normalized Schur-Cohn form: each step
  // computes the reflection coefficient kappa = b_m / b_0 and requires
  // |kappa| < 1.  Equivalent to the classic product-form table but far
  // better conditioned near the stability boundary (no coefficient
  // blow-up across rows).
  std::vector<double> row = a;
  while (row.size() > 1) {
    const std::size_t m = row.size() - 1;
    const double kappa = row[m] / row[0];
    if (!(std::fabs(kappa) < 1.0)) {
      std::ostringstream os;
      os << "Jury row " << result.table.size()
         << ": |b_m| < |b_0| violated (kappa = " << kappa << ")";
      result.failed_condition = os.str();
      return result;
    }
    std::vector<double> next(m);
    for (std::size_t k = 0; k < m; ++k) {
      next[k] = row[k] - kappa * row[m - k];
    }
    result.table.push_back(next);
    row = std::move(next);
  }

  result.stable = true;
  return result;
}

Result<JuryResult> jury_test_without_unit_root(
    std::span<const double> coefficients_high_first, double tol) {
  // Verify P(1) ~ 0, then synthetic-divide by (z - 1).
  std::size_t first = 0;
  while (first < coefficients_high_first.size() &&
         coefficients_high_first[first] == 0.0) {
    ++first;
  }
  std::vector<double> a(coefficients_high_first.begin() +
                            static_cast<std::ptrdiff_t>(first),
                        coefficients_high_first.end());
  if (a.size() < 2) {
    return Status::invalid_argument("polynomial has no root to divide out");
  }
  double p1 = 0.0;
  double scale = 0.0;
  for (double c : a) {
    p1 += c;
    scale = std::max(scale, std::fabs(c));
  }
  if (std::fabs(p1) > tol * std::max(1.0, scale)) {
    return Status::failed_precondition(
        "polynomial does not have a root at z = 1");
  }
  // Synthetic division by (z - 1): q[k] = q[k-1] + a[k], q[-1] = 0.
  std::vector<double> q(a.size() - 1);
  double carry = 0.0;
  for (std::size_t k = 0; k + 1 < a.size(); ++k) {
    carry += a[k];
    q[k] = carry;
  }
  return jury_test(q);
}

}  // namespace roclk::signal
