#include "roclk/signal/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "roclk/common/status.hpp"

namespace roclk::signal {

Polynomial::Polynomial(std::initializer_list<double> coeffs)
    : coeffs_{coeffs} {
  if (coeffs_.empty()) coeffs_ = {0.0};
}

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_{std::move(coeffs)} {
  if (coeffs_.empty()) coeffs_ = {0.0};
}

Polynomial Polynomial::delay(std::size_t k) {
  std::vector<double> c(k + 1, 0.0);
  c[k] = 1.0;
  return Polynomial{std::move(c)};
}

Polynomial Polynomial::constant(double c) { return Polynomial{{c}}; }

std::size_t Polynomial::degree() const {
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    if (std::fabs(coeffs_[i]) > 0.0) return i;
  }
  return 0;
}

double Polynomial::coefficient(std::size_t k) const {
  return k < coeffs_.size() ? coeffs_[k] : 0.0;
}

std::complex<double> Polynomial::evaluate(std::complex<double> z) const {
  ROCLK_CHECK(std::abs(z) > 0.0 || degree() == 0,
                "cannot evaluate negative powers at z = 0");
  // Horner in z^-1: a0 + z^-1 (a1 + z^-1 (a2 + ...)).
  const std::complex<double> zi =
      degree() == 0 ? std::complex<double>{0.0} : 1.0 / z;
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * zi + coeffs_[i];
  }
  return acc;
}

double Polynomial::evaluate(double z) const {
  return evaluate(std::complex<double>{z, 0.0}).real();
}

std::vector<double> Polynomial::ascending_in_z() const {
  const std::size_t deg = degree();
  std::vector<double> out(deg + 1);
  // z^deg * a(z) = a0 z^deg + a1 z^(deg-1) + ... + a_deg; highest first.
  for (std::size_t i = 0; i <= deg; ++i) out[i] = coefficient(i);
  return out;
}

Polynomial& Polynomial::trim(double tol) {
  while (coeffs_.size() > 1 && std::fabs(coeffs_.back()) <= tol) {
    coeffs_.pop_back();
  }
  return *this;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = coefficient(i) + other.coefficient(i);
  }
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + (other * -1.0);
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0.0) continue;
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::operator*(double scale) const {
  std::vector<double> out = coeffs_;
  for (double& c : out) c *= scale;
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::delayed(std::size_t k) const {
  std::vector<double> out(coeffs_.size() + k, 0.0);
  std::copy(coeffs_.begin(), coeffs_.end(), out.begin() + static_cast<std::ptrdiff_t>(k));
  return Polynomial{std::move(out)};
}

bool Polynomial::operator==(const Polynomial& other) const {
  const std::size_t n = std::max(coeffs_.size(), other.coeffs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (coefficient(i) != other.coefficient(i)) return false;
  }
  return true;
}

std::string Polynomial::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i <= degree(); ++i) {
    const double c = coefficient(i);
    if (c == 0.0 && degree() > 0) continue;
    if (first) {
      if (c < 0.0) os << "-";
      first = false;
    } else {
      os << (c < 0.0 ? " - " : " + ");
    }
    os << std::fabs(c);
    if (i > 0) os << " z^-" << i;
  }
  if (first) os << "0";
  return os.str();
}

}  // namespace roclk::signal
