#include "roclk/power/voltage_model.hpp"

#include <cmath>

namespace roclk::power {

Status validate(const ProcessParams& params) {
  if (params.vdd_nominal <= params.vth) {
    return Status::invalid_argument("nominal vdd must exceed vth");
  }
  if (params.vth <= 0.0) {
    return Status::invalid_argument("vth must be positive");
  }
  if (params.alpha < 1.0 || params.alpha > 2.0) {
    return Status::invalid_argument("alpha outside the physical 1..2 range");
  }
  if (params.vdd_max < params.vdd_nominal) {
    return Status::invalid_argument("vdd_max below nominal");
  }
  if (params.leakage_share < 0.0 || params.leakage_share >= 1.0) {
    return Status::invalid_argument("leakage share must be in [0, 1)");
  }
  return Status::ok();
}

double delay_factor(double vdd, const ProcessParams& params) {
  ROCLK_CHECK_OK(validate(params));
  ROCLK_CHECK(vdd > params.vth, "vdd must exceed vth for switching");
  const double num = vdd / std::pow(vdd - params.vth, params.alpha);
  const double den = params.vdd_nominal /
                     std::pow(params.vdd_nominal - params.vth, params.alpha);
  return num / den;
}

Result<double> vdd_for_delay_factor(double target,
                                    const ProcessParams& params) {
  const Status status = validate(params);
  if (!status.is_ok()) return status;
  if (target <= 0.0) {
    return Status::invalid_argument("target delay factor must be positive");
  }
  // delay_factor is monotone decreasing in vdd; bracket and bisect.
  double lo = params.vth * 1.0001;
  double hi = params.vdd_max;
  if (delay_factor(hi, params) > target) {
    return Status::out_of_range(
        "required overdrive exceeds the vdd_max reliability ceiling");
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (delay_factor(mid, params) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double energy_per_op_factor(double vdd_factor, double period_factor,
                            const ProcessParams& params) {
  ROCLK_CHECK(vdd_factor > 0.0 && period_factor > 0.0,
                "factors must be positive");
  const double dynamic = (1.0 - params.leakage_share) * vdd_factor *
                         vdd_factor;
  const double leakage = params.leakage_share * vdd_factor * vdd_factor *
                         vdd_factor * period_factor;
  return dynamic + leakage;
}

OperatingPoint period_margin_strategy(double delay_uncertainty,
                                      const ProcessParams& params) {
  ROCLK_CHECK(delay_uncertainty >= 0.0, "uncertainty cannot be negative");
  OperatingPoint op;
  op.name = "fixed clock, period margin";
  op.vdd_factor = 1.0;
  op.period_factor = 1.0 + delay_uncertainty;
  op.throughput_factor = 1.0 / op.period_factor;
  op.energy_factor =
      energy_per_op_factor(op.vdd_factor, op.period_factor, params);
  return op;
}

Result<OperatingPoint> voltage_margin_strategy(double delay_uncertainty,
                                               const ProcessParams& params) {
  ROCLK_CHECK(delay_uncertainty >= 0.0, "uncertainty cannot be negative");
  // Worst-case gates are (1+u) slower at nominal V; overdrive until the
  // alpha-power speed-up cancels it.
  auto vdd = vdd_for_delay_factor(1.0 / (1.0 + delay_uncertainty), params);
  if (!vdd.is_ok()) return vdd.status();
  OperatingPoint op;
  op.name = "fixed clock, voltage margin";
  op.vdd_factor = vdd.value() / params.vdd_nominal;
  op.period_factor = 1.0;
  op.throughput_factor = 1.0;
  op.energy_factor =
      energy_per_op_factor(op.vdd_factor, op.period_factor, params);
  return op;
}

OperatingPoint adaptive_clock_strategy(double mean_extra_period_fraction,
                                       const ProcessParams& params) {
  ROCLK_CHECK(mean_extra_period_fraction >= 0.0,
                "extra period cannot be negative");
  OperatingPoint op;
  op.name = "adaptive clock (this paper)";
  op.vdd_factor = 1.0;
  op.period_factor = 1.0 + mean_extra_period_fraction;
  op.throughput_factor = 1.0 / op.period_factor;
  op.energy_factor =
      energy_per_op_factor(op.vdd_factor, op.period_factor, params);
  return op;
}

}  // namespace roclk::power
