#include "roclk/service/protocol.hpp"

#include <algorithm>
#include <cstring>

namespace roclk::service {

namespace {

/// Message strings pack 8 chars per word; a length word leads.
void put_string(const std::string& s, WireWriter& out) {
  out.put(s.size());
  for (std::size_t i = 0; i < s.size(); i += 8) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, s.size() - i);
    std::memcpy(&word, s.data() + i, n);
    out.put(word);
  }
}

bool take_string(WireReader& in, std::string& s) {
  const std::uint64_t len = in.take();
  if (!in.ok() || len > 8 * in.remaining()) return false;
  s.clear();
  s.reserve(len);
  for (std::uint64_t i = 0; i < len; i += 8) {
    const std::uint64_t word = in.take();
    const std::size_t n = std::min<std::uint64_t>(8, len - i);
    char chars[8];
    std::memcpy(chars, &word, 8);
    s.append(chars, n);
  }
  return in.ok();
}

}  // namespace

void encode_response(const Response& response, WireWriter& out) {
  out.put(static_cast<std::uint64_t>(response.status));
  out.put((response.from_cache ? 1ULL : 0ULL) |
          (response.coalesced ? 2ULL : 0ULL));
  out.put(response.content_hash);
  put_string(response.message, out);
  out.put(response.values.size());
  for (const double v : response.values) out.put_double(v);
}

Result<Response> decode_response(WireReader& in) {
  Response response;
  response.status = static_cast<ResponseStatus>(in.take());
  const std::uint64_t flags = in.take();
  response.from_cache = (flags & 1) != 0;
  response.coalesced = (flags & 2) != 0;
  response.content_hash = in.take();
  if (!take_string(in, response.message)) {
    return Status::invalid_argument("response message truncated");
  }
  const std::uint64_t count = in.take();
  if (!in.ok() || count > in.remaining()) {
    return Status::invalid_argument("response value count truncated");
  }
  response.values.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    response.values[i] = in.take_double();
  }
  if (!in.ok()) {
    return Status::invalid_argument("response payload truncated");
  }
  if (response.status > ResponseStatus::kInternalError) {
    return Status::invalid_argument("unknown response status on wire");
  }
  return response;
}

std::vector<std::uint64_t> encode_frame(const Frame& frame) {
  WireWriter out;
  out.put(kFrameMagic);
  out.put((static_cast<std::uint64_t>(kProtocolVersion) << 32) |
          static_cast<std::uint64_t>(frame.type));
  out.put(frame.payload.size());
  for (const std::uint64_t w : frame.payload) out.put(w);
  out.words.push_back(out.checksum);
  return std::move(out.words);
}

DecodeError validate_header(const std::uint64_t header[3], FrameType& type,
                            std::uint64_t& payload_words) {
  if (header[0] != kFrameMagic) return DecodeError::kBadMagic;
  const auto version = static_cast<std::uint32_t>(header[1] >> 32);
  const auto raw_type =
      static_cast<std::uint32_t>(header[1] & 0xFFFFFFFFULL);
  if (version != kProtocolVersion) return DecodeError::kBadVersion;
  if (raw_type < 1 ||
      raw_type > static_cast<std::uint32_t>(FrameType::kPing)) {
    return DecodeError::kBadType;
  }
  if (header[2] > kMaxPayloadWords) return DecodeError::kOversized;
  type = static_cast<FrameType>(raw_type);
  payload_words = header[2];
  return DecodeError::kOk;
}

DecodeError decode_frame(const std::uint64_t* words, std::size_t count,
                         Frame& frame) {
  if (count < 4) return DecodeError::kTruncated;
  FrameType type{};
  std::uint64_t payload_words = 0;
  if (const DecodeError err = validate_header(words, type, payload_words);
      err != DecodeError::kOk) {
    return err;
  }
  if (count != 3 + payload_words + 1) return DecodeError::kTruncated;
  std::uint64_t checksum = kWireSeed;
  for (std::size_t i = 0; i < count - 1; ++i) {
    checksum = wire_mix(checksum, words[i]);
  }
  if (checksum != words[count - 1]) return DecodeError::kBadChecksum;
  frame.type = type;
  frame.payload.assign(words + 3, words + 3 + payload_words);
  return DecodeError::kOk;
}

}  // namespace roclk::service
