#include "roclk/service/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace roclk::service {

namespace {

// The only clock in the retry layer; backoff *decisions* never read it
// (they are pure functions of the jitter key), only the breaker's
// open-window timer does.
std::uint64_t steady_now_ms() {
  using namespace std::chrono;
  return static_cast<std::uint64_t>(
      duration_cast<milliseconds>(
          steady_clock::now().time_since_epoch())  // roclk-lint: allow(wall-clock)
          .count());
}

void real_sleep_ms(std::uint32_t ms) {
  if (ms == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds{ms});
}

}  // namespace

bool retryable_status(ResponseStatus status) {
  // kShuttingDown is retryable by contract: the status's own comment
  // promises "retry elsewhere/later" — the daemon is draining, not
  // rejecting the scenario.  See docs/service.md §6.
  return status == ResponseStatus::kOverloaded ||
         status == ResponseStatus::kShuttingDown;
}

std::uint32_t backoff_ms(const RetryPolicy& policy, std::uint32_t attempt,
                         const StreamKey& key) {
  if (attempt == 0) return 0;
  const double exponent = static_cast<double>(attempt - 1);
  double base = static_cast<double>(policy.initial_backoff_ms) *
                std::pow(std::max(policy.backoff_multiplier, 1.0), exponent);
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  const double jitter = std::clamp(policy.jitter_frac, 0.0, 1.0);
  CounterRng rng{key.at(attempt)};
  const double scale = rng.uniform(1.0 - jitter, 1.0 + jitter);
  const double scaled =
      std::min(base * scale, static_cast<double>(policy.max_backoff_ms));
  return static_cast<std::uint32_t>(std::max(scaled, 0.0));
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_{std::move(config)} {
  if (!config_.now_ms) config_.now_ms = steady_now_ms;
}

bool CircuitBreaker::allow() {
  if (config_.failure_threshold == 0) return true;  // breaker disabled
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (config_.now_ms() - opened_at_ms_ >= config_.open_ms) {
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = false;
        break;
      }
      return false;
    case BreakerState::kHalfOpen:
      break;
  }
  // Half-open: exactly one probe may be outstanding.
  if (probe_in_flight_) return false;
  probe_in_flight_ = true;
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  state_ = BreakerState::kClosed;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure() {
  if (config_.failure_threshold == 0) return;
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ms_ = config_.now_ms();
    probe_in_flight_ = false;
  }
}

ResilientClient::ResilientClient(ResilientClientConfig config)
    : config_{std::move(config)}, breaker_{config_.breaker} {
  if (!config_.sleep_ms) config_.sleep_ms = real_sleep_ms;
}

Result<Response> ResilientClient::query(const Request& request) {
  if (!config_.connect) {
    return Status::failed_precondition(
        "ResilientClient needs a connector");
  }
  if (!breaker_.allow()) {
    ++stats_.breaker_rejections;
    return Status::failed_precondition(
        std::string{"circuit breaker is "} + to_string(breaker_.state()) +
        "; query shed locally");
  }
  const StreamKey query_key = config_.jitter_key.at(stats_.queries);
  ++stats_.queries;

  Request attempt_request = request;
  if (attempt_request.deadline_ms == 0) {
    attempt_request.deadline_ms = config_.retry.per_attempt_deadline_ms;
  }

  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(config_.retry.max_attempts, 1);
  Status last_error = Status::internal("no attempt was made");
  std::optional<Response> last_typed;  // last retryable typed response
  std::uint64_t backoff_spent_ms = 0;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const std::uint32_t wait =
          backoff_ms(config_.retry, attempt, query_key);
      if (config_.retry.total_backoff_budget_ms != 0 &&
          backoff_spent_ms + wait >
              config_.retry.total_backoff_budget_ms) {
        break;  // budget exhausted; report the last outcome below
      }
      backoff_spent_ms += wait;
      stats_.backoff_ms_total += wait;
      config_.sleep_ms(wait);
      ++stats_.retries;
    }
    ++stats_.attempts;

    if (!client_ || !client_->connected()) {
      Result<Client> dialed = config_.connect();
      if (!dialed.is_ok()) {
        ++stats_.transport_errors;
        breaker_.record_failure();
        last_error = dialed.status();
        client_.reset();
        continue;
      }
      if (dialed_once_) ++stats_.reconnects;
      dialed_once_ = true;
      client_.emplace(std::move(dialed).value());
    }

    Result<Response> outcome = client_->query(attempt_request);
    if (!outcome.is_ok()) {
      // The wire broke mid-round-trip: the connection is spent.  The
      // query is idempotent (content-addressed), so dial again — at
      // worst the re-ask is a cache hit on the server.
      ++stats_.transport_errors;
      breaker_.record_failure();
      last_error = outcome.status();
      client_.reset();
      continue;
    }
    const Response& response = outcome.value();
    if (retryable_status(response.status)) {
      ++stats_.retryable_statuses;
      breaker_.record_failure();
      last_typed = response;
      if (response.status == ResponseStatus::kShuttingDown) {
        // A draining daemon closes after the in-flight frames; don't
        // re-ask a server that told us it is going away.
        client_.reset();
      }
      continue;
    }
    // The service answered definitively (OK or a non-retryable typed
    // error).  Either way the server is alive and talking protocol.
    breaker_.record_success();
    return outcome;
  }
  ++stats_.exhausted;
  // The budget ran out.  Prefer the last *typed* outcome (OVERLOADED /
  // SHUTTING_DOWN with its distinct message) over a bare transport
  // Status — callers distinguish "the service said not now" from "the
  // wire never answered".
  if (last_typed) return *last_typed;
  return last_error;
}

}  // namespace roclk::service
