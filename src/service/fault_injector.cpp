#include "roclk/service/fault_injector.hpp"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace roclk::service {

FaultyStream::FaultyStream(std::unique_ptr<ByteStream> inner,
                           StreamKey key, TransportFaultConfig config)
    : inner_{std::move(inner)},
      read_key_{key.split("fault.read")},
      write_key_{key.split("fault.write")},
      config_{std::move(config)} {}

bool FaultyStream::reset_tripped() const {
  return config_.reset_after_bytes != 0 &&
         total_bytes_ >= config_.reset_after_bytes;
}

FaultyStream::OpPlan FaultyStream::plan_op(const StreamKey& direction_key,
                                           std::uint64_t op_index,
                                           std::size_t bytes) const {
  // One generator per (direction, op); each decision consumes a fixed
  // draw budget regardless of outcome, so decision k of op i never
  // depends on which faults fired before it.
  CounterRng rng{direction_key.at(op_index)};
  OpPlan plan;
  const double eintr_draw = rng.uniform();
  const std::uint64_t storm_draw =
      rng.uniform_int(std::max<std::uint32_t>(config_.max_eintr_storm, 1));
  if (eintr_draw < config_.eintr_rate) {
    plan.eintr_storm = static_cast<std::uint32_t>(storm_draw) + 1;
  }
  plan.stall = rng.uniform() < config_.stall_rate;
  const double short_draw = rng.uniform();
  const std::uint64_t chunk_draw =
      rng.uniform_int(std::max<std::size_t>(bytes, 1));
  if (short_draw < config_.short_op_rate && bytes > 1) {
    plan.clamped_bytes = static_cast<std::size_t>(chunk_draw) + 1;
    if (plan.clamped_bytes >= bytes) plan.clamped_bytes = bytes - 1;
  }
  plan.bitflip = rng.uniform() < config_.bitflip_rate;
  plan.flip_byte = rng.uniform_int(~std::uint64_t{0} >> 1);
  plan.flip_bit = static_cast<std::uint32_t>(rng.uniform_int(8));
  return plan;
}

IoResult FaultyStream::read_some(void* buffer, std::size_t bytes) {
  if (!inner_ || bytes == 0) return IoResult::error();
  if (reset_tripped()) {
    ++stats_.resets;
    return IoResult::eof();  // a reset peer reads as a hangup
  }
  if (pending_eintr_ > 0) {
    --pending_eintr_;
    ++stats_.eintr_injected;
    return IoResult::interrupted();
  }
  const OpPlan plan = plan_op(read_key_, read_ops_++, bytes);
  ++stats_.reads;
  if (plan.eintr_storm > 0) {
    ++stats_.eintr_storms;
    ++stats_.eintr_injected;
    pending_eintr_ = plan.eintr_storm - 1;
    return IoResult::interrupted();
  }
  if (plan.stall) {
    ++stats_.stalls;
    if (config_.stall_hook) config_.stall_hook();
  }
  std::size_t ask = bytes;
  if (plan.clamped_bytes != 0) {
    ++stats_.short_reads;
    ask = plan.clamped_bytes;
  }
  const IoResult r = inner_->read_some(buffer, ask);
  if (r.kind != IoResult::Kind::kOk) return r;
  total_bytes_ += r.bytes;
  if (plan.bitflip && r.bytes > 0) {
    ++stats_.bit_flips;
    auto* out = static_cast<unsigned char*>(buffer);
    out[plan.flip_byte % r.bytes] ^=
        static_cast<unsigned char>(1u << plan.flip_bit);
  }
  return r;
}

IoResult FaultyStream::write_some(const void* buffer, std::size_t bytes) {
  if (!inner_ || bytes == 0) return IoResult::error();
  if (reset_tripped()) {
    ++stats_.resets;
    return IoResult::error();  // writing into a reset stream fails
  }
  if (pending_eintr_ > 0) {
    --pending_eintr_;
    ++stats_.eintr_injected;
    return IoResult::interrupted();
  }
  const OpPlan plan = plan_op(write_key_, write_ops_++, bytes);
  ++stats_.writes;
  if (plan.eintr_storm > 0) {
    ++stats_.eintr_storms;
    ++stats_.eintr_injected;
    pending_eintr_ = plan.eintr_storm - 1;
    return IoResult::interrupted();
  }
  if (plan.stall) {
    ++stats_.stalls;
    if (config_.stall_hook) config_.stall_hook();
  }
  std::size_t ask = bytes;
  if (plan.clamped_bytes != 0) {
    ++stats_.short_writes;
    ask = plan.clamped_bytes;
  }
  if (plan.bitflip && ask > 0) {
    // Corrupt the bytes *on the wire*, not the caller's buffer: the
    // retrying writer must be able to resend the pristine frame.
    ++stats_.bit_flips;
    std::vector<unsigned char> corrupted(ask);
    std::memcpy(corrupted.data(), buffer, ask);
    corrupted[plan.flip_byte % ask] ^=
        static_cast<unsigned char>(1u << plan.flip_bit);
    const IoResult r = inner_->write_some(corrupted.data(), ask);
    if (r.kind == IoResult::Kind::kOk) total_bytes_ += r.bytes;
    return r;
  }
  const IoResult r = inner_->write_some(buffer, ask);
  if (r.kind == IoResult::Kind::kOk) total_bytes_ += r.bytes;
  return r;
}

void FaultyStream::close() {
  if (inner_) inner_->close();
}

bool FaultyStream::valid() const {
  return inner_ && inner_->valid() && !reset_tripped();
}

std::unique_ptr<FaultyStream> make_faulty_stream(
    FdStream stream, StreamKey key, TransportFaultConfig config) {
  return std::make_unique<FaultyStream>(
      std::make_unique<FdByteStream>(std::move(stream)), key,
      std::move(config));
}

}  // namespace roclk::service
