#include "roclk/service/journal.hpp"

#include <cstdio>
#include <utility>

namespace roclk::service {

namespace {

// Whole-record writes: one fwrite + fflush per record, so a crash can
// only tear the file's tail.
Status write_words(std::FILE* file, const std::vector<std::uint64_t>& words) {
  if (words.empty()) return Status::ok();
  const std::size_t wrote =
      std::fwrite(words.data(), sizeof(std::uint64_t), words.size(), file);
  if (wrote != words.size() || std::fflush(file) != 0) {
    return Status::internal("journal write failed");
  }
  return Status::ok();
}

std::vector<std::uint64_t> encode_header() {
  WireWriter w;
  w.put(kJournalMagic);
  w.put(kJournalVersion);
  w.words.push_back(w.checksum);
  return w.words;
}

}  // namespace

CacheJournal::~CacheJournal() { close(); }

void CacheJournal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::vector<std::uint64_t> CacheJournal::encode_record(
    std::uint64_t hash, const Response& response) {
  WireWriter payload;
  encode_response(response, payload);

  WireWriter record;
  record.put(kJournalRecordMagic);
  record.put(static_cast<std::uint64_t>(payload.words.size()));
  record.put(hash);
  for (const std::uint64_t w : payload.words) record.put(w);
  record.words.push_back(record.checksum);
  return record.words;
}

JournalLoadResult CacheJournal::load(const std::string& path,
                                     Status* status) {
  JournalLoadResult result;
  Status local = Status::ok();

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    local = Status::not_found("journal not found: " + path);
    if (status != nullptr) *status = local;
    return result;
  }

  // Slurp whole words; a trailing partial word is torn tail by
  // definition and counts toward dropped_tail_words.
  std::vector<std::uint64_t> words;
  {
    std::uint64_t w = 0;
    while (std::fread(&w, sizeof(w), 1, file) == 1) words.push_back(w);
  }
  std::fclose(file);

  // Header: magic, version, checksum.
  if (words.size() < 3) {
    local = Status::internal("journal header truncated: " + path);
    if (status != nullptr) *status = local;
    result.dropped_tail_words = words.size();
    return result;
  }
  {
    WireReader r{words.data(), 2};
    const std::uint64_t magic = r.take();
    const std::uint64_t version = r.take();
    if (magic != kJournalMagic || words[2] != r.checksum()) {
      local = Status::internal("journal header corrupt: " + path);
      if (status != nullptr) *status = local;
      result.dropped_tail_words = words.size();
      return result;
    }
    if (version != kJournalVersion) {
      local = Status::internal("journal version unsupported: " + path);
      if (status != nullptr) *status = local;
      result.dropped_tail_words = words.size();
      return result;
    }
  }
  result.header_ok = true;

  // Records.  The first structurally-broken record ends recovery: a bad
  // length prefix poisons all later framing, so everything from the
  // break onward is the dropped tail.
  std::size_t pos = 3;
  while (pos < words.size()) {
    const std::size_t tail = words.size() - pos;
    // Need at least magic + count + hash + checksum.
    if (tail < 4) break;
    if (words[pos] != kJournalRecordMagic) break;
    const std::uint64_t payload_words = words[pos + 1];
    if (payload_words == 0 || payload_words > kMaxPayloadWords) break;
    const std::size_t record_words =
        3 + static_cast<std::size_t>(payload_words) + 1;
    if (tail < record_words) break;  // torn final record

    WireReader r{words.data() + pos, record_words - 1};
    (void)r.take();  // magic
    (void)r.take();  // payload count
    const std::uint64_t hash = r.take();
    WireReader payload{words.data() + pos + 3,
                       static_cast<std::size_t>(payload_words)};
    for (std::uint64_t i = 0; i < payload_words; ++i) {
      (void)r.take();
    }
    if (words[pos + record_words - 1] != r.checksum()) break;

    Result<Response> decoded = decode_response(payload);
    if (!decoded.is_ok()) break;

    result.entries.push_back(
        JournalEntry{hash, std::move(decoded).value()});
    ++result.records_loaded;
    pos += record_words;
  }

  result.dropped_tail_words = words.size() - pos;
  if (result.dropped_tail_words > 0) {
    local = Status::internal(
        "journal tail torn or corrupt; kept " +
        std::to_string(result.records_loaded) + " record(s), dropped " +
        std::to_string(result.dropped_tail_words) + " trailing word(s)");
  }
  if (status != nullptr) *status = local;
  return result;
}

Status CacheJournal::open_for_append(const std::string& path) {
  close();
  appended_records_ = 0;
  path_ = path;

  // "a" creates the file if missing; a fresh (empty) journal needs its
  // header before any record.
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::internal("cannot open journal for append: " + path);
  }
  long size = 0;
  if (std::fseek(file, 0, SEEK_END) == 0) size = std::ftell(file);
  file_ = file;
  if (size <= 0) {
    Status header = write_words(file_, encode_header());
    if (!header.is_ok()) {
      close();
      return header;
    }
  }
  return Status::ok();
}

Status CacheJournal::append(std::uint64_t hash, const Response& response) {
  if (file_ == nullptr) {
    return Status::failed_precondition("journal is not open");
  }
  Status wrote = write_words(file_, encode_record(hash, response));
  if (wrote.is_ok()) ++appended_records_;
  return wrote;
}

Status CacheJournal::compact(const std::vector<JournalEntry>& entries) {
  if (path_.empty()) {
    return Status::failed_precondition("journal has no path to compact");
  }
  close();

  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      return Status::internal("cannot open compaction file: " + tmp);
    }
    Status wrote = write_words(file, encode_header());
    for (const JournalEntry& entry : entries) {
      if (!wrote.is_ok()) break;
      wrote = write_words(file, encode_record(entry.hash, entry.response));
    }
    std::fclose(file);
    if (!wrote.is_ok()) {
      std::remove(tmp.c_str());
      return wrote;
    }
  }
  // Atomic cutover: readers see the old journal or the new one, never a
  // partial hybrid.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::internal("journal compaction rename failed: " + path_);
  }

  std::FILE* file = std::fopen(path_.c_str(), "ab");
  if (file == nullptr) {
    return Status::internal("cannot reopen journal after compaction: " +
                            path_);
  }
  file_ = file;
  appended_records_ = 0;
  return Status::ok();
}

}  // namespace roclk::service
