#include "roclk/service/session.hpp"

#include "roclk/service/request.hpp"

namespace roclk::service {

namespace {

bool send_response(ByteStream& stream, const Response& response) {
  WireWriter payload;
  encode_response(response, payload);
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.payload = std::move(payload.words);
  return write_frame(stream, frame);
}

}  // namespace

SessionEnd run_server_session(ByteStream& stream, SweepService& service) {
  for (;;) {
    const FrameReadOutcome incoming = read_frame(stream);
    switch (incoming.result) {
      case ReadFrameResult::kClosed:
        return SessionEnd::kClientClosed;
      case ReadFrameResult::kIoError:
        return SessionEnd::kTransportError;
      case ReadFrameResult::kMalformed: {
        // Answer with the typed status, then end the session: after a
        // structural failure the length framing cannot be trusted.
        const Response response = Response::error(
            to_response_status(incoming.error), "malformed frame");
        (void)send_response(stream, response);
        return SessionEnd::kMalformed;
      }
      case ReadFrameResult::kFrame:
        break;
    }

    const Frame& frame = incoming.frame;
    switch (frame.type) {
      case FrameType::kPing: {
        Response pong;
        pong.message = service.shutting_down() ? "draining" : "ready";
        if (!send_response(stream, pong)) return SessionEnd::kTransportError;
        break;
      }
      case FrameType::kShutdown: {
        service.begin_shutdown();
        Response ack;
        ack.message = "draining";
        (void)send_response(stream, ack);
        return SessionEnd::kShutdownRequested;
      }
      case FrameType::kRequest: {
        WireReader reader{frame.payload.data(), frame.payload.size()};
        Result<Request> request = decode_request(reader);
        Response response =
            request.is_ok()
                ? service.handle(request.value())
                : Response::error(ResponseStatus::kInvalidRequest,
                                  request.status().message());
        if (!send_response(stream, response)) return SessionEnd::kTransportError;
        break;
      }
      case FrameType::kResponse: {
        // A client must never send a response frame; treat it like any
        // other protocol violation.
        const Response response = Response::error(
            ResponseStatus::kMalformedFrame,
            "unexpected response frame from client");
        (void)send_response(stream, response);
        return SessionEnd::kMalformed;
      }
    }
  }
}

SessionEnd run_server_session(int fd, SweepService& service) {
  FdByteStream stream{fd};  // borrows: the accept loop owns the fd
  return run_server_session(stream, service);
}

}  // namespace roclk::service
