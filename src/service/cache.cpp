#include "roclk/service/cache.hpp"

namespace roclk::service {

bool ResultCache::lookup(std::uint64_t hash, Response& response) {
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_slot);
  response = it->second.response;
  return true;
}

void ResultCache::store(std::uint64_t hash, const Response& response) {
  if (capacity_ == 0) return;
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    it->second.response = response;
    lru_.splice(lru_.begin(), lru_, it->second.lru_slot);
    return;
  }
  lru_.push_front(hash);
  entries_.emplace(hash, Entry{response, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCacheStats ResultCache::stats() const {
  return {hits_, misses_, evictions_, entries_.size()};
}

std::vector<std::pair<std::uint64_t, const Response*>>
ResultCache::snapshot_lru_to_mru() const {
  std::vector<std::pair<std::uint64_t, const Response*>> out;
  out.reserve(entries_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    out.emplace_back(*it, &entries_.at(*it).response);
  }
  return out;
}

void ResultCache::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace roclk::service
