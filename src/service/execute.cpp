#include "roclk/service/execute.hpp"

#include <cmath>
#include <exception>
#include <vector>

#include "roclk/analysis/experiments.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/analysis/yield.hpp"

namespace roclk::service {

namespace {

using analysis::RunMetrics;
using analysis::SystemKind;

/// Fixed-clock reference the relative adaptive period normalises by: the
/// design-time period covering the corner's HoDV amplitude and |mu| bound
/// (the paper's worked-example convention).
double fixed_period_for(const CornerQuery& c) {
  const double amplitude = c.amplitude_frac * c.setpoint_c;
  const double mu_bound = std::abs(c.mu_over_c) * c.setpoint_c;
  return analysis::fixed_clock_period(c.setpoint_c, amplitude, mu_bound);
}

RunMetrics run_corner(const CornerQuery& c, double mu_over_c,
                      double tclk_over_c, double fixed_period) {
  const double setpoint = c.setpoint_c;
  return analysis::measure_system(
      static_cast<SystemKind>(c.system), setpoint, tclk_over_c * setpoint,
      c.amplitude_frac * setpoint, c.te_over_c * setpoint,
      mu_over_c * setpoint, fixed_period, c.cycles, c.skip,
      c.free_ro_margin_frac * setpoint,
      static_cast<cdn::DelayQuantization>(c.quantization));
}

std::vector<double> grid_points(const GridQuery& g) {
  std::vector<double> xs(g.points);
  const double n = static_cast<double>(g.points) - 1.0;
  for (std::uint64_t i = 0; i < g.points; ++i) {
    const double t = static_cast<double>(i) / n;
    xs[i] = g.scale == GridScale::kLog
                ? g.lo * std::pow(g.hi / g.lo, t)
                : g.lo + (g.hi - g.lo) * t;
  }
  return xs;
}

Response execute_corner(const CornerQuery& c) {
  const RunMetrics m =
      run_corner(c, c.mu_over_c, c.tclk_over_c, fixed_period_for(c));
  Response response;
  response.values = {m.safety_margin, m.mean_period,
                     m.relative_adaptive_period,
                     static_cast<double>(m.violations), m.tau_ripple};
  return response;
}

Response execute_grid(const GridQuery& g, ThreadPool* pool) {
  const std::vector<double> xs = grid_points(g);
  const CornerQuery& b = g.base;
  const double setpoint = b.setpoint_c;
  const double fixed_period = fixed_period_for(b);

  std::vector<RunMetrics> metrics;
  if (g.axis == GridAxis::kTeOverC) {
    // The perturbation period changes per point, so the points cannot
    // share one ensemble waveform; each corner is still memoised.
    metrics.reserve(xs.size());
    for (const double te : xs) {
      CornerQuery point = b;
      point.te_over_c = te;
      metrics.push_back(run_corner(point, point.mu_over_c,
                                   point.tclk_over_c, fixed_period));
    }
  } else {
    // tclk / mu sweeps share the HoDV waveform: one ensemble run, one
    // lane per grid point, on the caller's pool.
    std::vector<double> tclks{b.tclk_over_c * setpoint};
    std::vector<double> mus{b.mu_over_c * setpoint};
    if (g.axis == GridAxis::kTclkOverC) {
      tclks.assign(xs.size(), 0.0);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        tclks[i] = xs[i] * setpoint;
      }
    } else {
      mus.assign(xs.size(), 0.0);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        mus[i] = xs[i] * setpoint;
      }
    }
    metrics = analysis::measure_system_ensemble(
        static_cast<SystemKind>(b.system), setpoint, tclks,
        b.amplitude_frac * setpoint, b.te_over_c * setpoint, mus,
        fixed_period, b.cycles, b.skip, b.free_ro_margin_frac * setpoint,
        static_cast<cdn::DelayQuantization>(b.quantization), pool);
  }

  Response response;
  response.values.reserve(3 * xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    response.values.push_back(xs[i]);
    response.values.push_back(metrics[i].relative_adaptive_period);
    response.values.push_back(metrics[i].safety_margin);
  }
  return response;
}

Response execute_yield(const YieldQuery& y, ThreadPool* pool) {
  analysis::YieldConfig config;
  config.chips = y.chips;
  config.paths = y.paths;
  config.nominal_depth = y.nominal_depth;
  config.d2d_sigma = y.d2d_sigma;
  config.wid_sigma = y.wid_sigma;
  config.rnd_sigma = y.rnd_sigma;
  config.setpoint_c = y.setpoint_c;
  config.ro_max_length = y.ro_max_length;
  config.seed = y.seed;

  std::vector<double> margins(y.margin_points);
  const double n = static_cast<double>(y.margin_points) - 1.0;
  for (std::uint64_t i = 0; i < y.margin_points; ++i) {
    margins[i] = y.margin_points == 1
                     ? y.margin_lo
                     : y.margin_lo + (y.margin_hi - y.margin_lo) *
                                         (static_cast<double>(i) / n);
  }
  const analysis::YieldCurve curve =
      analysis::yield_curve(margins, config, pool);

  Response response;
  response.values.reserve(3 + 3 * curve.points.size());
  response.values.push_back(curve.mean_worst_path);
  response.values.push_back(curve.mean_adaptive_period);
  response.values.push_back(curve.p99_worst_path);
  for (const analysis::YieldPoint& p : curve.points) {
    response.values.push_back(p.margin_stages);
    response.values.push_back(p.fixed_yield);
    response.values.push_back(p.adaptive_yield);
  }
  return response;
}

}  // namespace

Response execute(const Request& normalized, ThreadPool* pool) {
  try {
    switch (normalized.kind) {
      case QueryKind::kCornerMargin:
        return execute_corner(normalized.corner);
      case QueryKind::kGridSweep:
        return execute_grid(normalized.grid, pool);
      case QueryKind::kYieldCurve:
        return execute_yield(normalized.yield, pool);
    }
    return Response::error(ResponseStatus::kInternalError,
                           "unhandled query kind");
  } catch (const std::exception& e) {
    // Validation is a deliberate superset of the cheap checks only; deep
    // contract violations (non-physical corners) surface here as a typed
    // status instead of tearing down the daemon.
    return Response::error(ResponseStatus::kInternalError, e.what());
  }
}

}  // namespace roclk::service
