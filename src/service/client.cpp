#include "roclk/service/client.hpp"

#include <utility>

namespace roclk::service {

Result<Client> Client::connect(const std::string& path) {
  Result<FdStream> stream = connect_unix(path);
  if (!stream.is_ok()) return stream.status();
  return Client{std::move(stream).value()};
}

Result<Response> Client::round_trip(const Frame& frame) {
  if (!connected()) {
    return Status::failed_precondition("client is not connected");
  }
  if (!write_frame(*stream_, frame)) {
    stream_->close();
    return Status::internal("failed to write frame");
  }
  const FrameReadOutcome reply = read_frame(*stream_);
  if (reply.result != ReadFrameResult::kFrame) {
    stream_->close();
    return Status::internal("connection lost awaiting response");
  }
  if (reply.frame.type != FrameType::kResponse) {
    stream_->close();
    return Status::internal("server sent a non-response frame");
  }
  WireReader reader{reply.frame.payload.data(), reply.frame.payload.size()};
  return decode_response(reader);
}

Result<Response> Client::query(const Request& request) {
  WireWriter payload;
  encode_request(request, payload);
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload = std::move(payload.words);
  return round_trip(frame);
}

Result<Response> Client::ping() {
  return round_trip(Frame{FrameType::kPing, {}});
}

Result<Response> Client::shutdown_server() {
  Result<Response> response = round_trip(Frame{FrameType::kShutdown, {}});
  if (stream_) stream_->close();
  return response;
}

Result<Response> Client::send_raw(const std::vector<std::uint64_t>& words) {
  if (!connected()) {
    return Status::failed_precondition("client is not connected");
  }
  if (!write_words(*stream_, words)) {
    stream_->close();
    return Status::internal("failed to write raw words");
  }
  const FrameReadOutcome reply = read_frame(*stream_);
  if (reply.result != ReadFrameResult::kFrame ||
      reply.frame.type != FrameType::kResponse) {
    stream_->close();
    return Status::internal("connection lost awaiting response");
  }
  WireReader reader{reply.frame.payload.data(), reply.frame.payload.size()};
  Result<Response> decoded = decode_response(reader);
  stream_->close();  // the server closes after answering a malformed frame
  return decoded;
}

}  // namespace roclk::service
