#include "roclk/service/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace roclk::service {

namespace {

/// Reads exactly `bytes`; 0 = clean EOF before any byte, -1 = error or
/// mid-buffer EOF, 1 = success.
int read_exact(int fd, void* buffer, std::size_t bytes) {
  auto* out = static_cast<char*>(buffer);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, out + got, bytes - got);
    if (n == 0) return got == 0 ? 0 : -1;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

bool write_all(int fd, const void* buffer, std::size_t bytes) {
  const auto* in = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < bytes) {
    const ssize_t n = ::write(fd, in + sent, bytes - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FdStream::~FdStream() { close(); }

FdStream::FdStream(FdStream&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)} {}

FdStream& FdStream::operator=(FdStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

int FdStream::release() { return std::exchange(fd_, -1); }

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameReadOutcome read_frame(int fd) {
  FrameReadOutcome outcome;
  std::uint64_t header[3];
  const int header_read = read_exact(fd, header, sizeof header);
  if (header_read == 0) {
    outcome.result = ReadFrameResult::kClosed;
    return outcome;
  }
  if (header_read < 0) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = DecodeError::kTruncated;
    return outcome;
  }
  FrameType type{};
  std::uint64_t payload_words = 0;
  if (const DecodeError err = validate_header(header, type, payload_words);
      err != DecodeError::kOk) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = err;
    return outcome;
  }
  std::vector<std::uint64_t> tail(payload_words + 1);
  if (read_exact(fd, tail.data(), tail.size() * sizeof(std::uint64_t)) !=
      1) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = DecodeError::kTruncated;
    return outcome;
  }
  std::uint64_t checksum = kWireSeed;
  for (const std::uint64_t w : header) checksum = wire_mix(checksum, w);
  for (std::size_t i = 0; i + 1 < tail.size(); ++i) {
    checksum = wire_mix(checksum, tail[i]);
  }
  if (checksum != tail.back()) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = DecodeError::kBadChecksum;
    return outcome;
  }
  outcome.result = ReadFrameResult::kFrame;
  outcome.frame.type = type;
  tail.pop_back();
  outcome.frame.payload = std::move(tail);
  return outcome;
}

bool write_frame(int fd, const Frame& frame) {
  const std::vector<std::uint64_t> words = encode_frame(frame);
  return write_all(fd, words.data(), words.size() * sizeof(std::uint64_t));
}

bool write_words(int fd, const std::vector<std::uint64_t>& words) {
  return write_all(fd, words.data(), words.size() * sizeof(std::uint64_t));
}

Status make_stream_pair(FdStream& a, FdStream& b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::internal(std::string{"socketpair: "} +
                            std::strerror(errno));
  }
  a = FdStream{fds[0]};
  b = FdStream{fds[1]};
  return Status::ok();
}

UnixListener::~UnixListener() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

Status UnixListener::listen(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::invalid_argument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  FdStream fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) {
    return Status::internal(std::string{"socket: "} + std::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return Status::internal("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd.fd(), backlog) != 0) {
    return Status::internal("listen " + path + ": " + std::strerror(errno));
  }
  fd_ = std::move(fd);
  path_ = path;
  return Status::ok();
}

FdStream UnixListener::accept() {
  if (!fd_.valid()) return {};
  const int conn = ::accept(fd_.fd(), nullptr, nullptr);
  return FdStream{conn};
}

void UnixListener::wake() {
  if (fd_.valid()) ::shutdown(fd_.fd(), SHUT_RDWR);
}

Result<FdStream> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::invalid_argument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  FdStream fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) {
    return Status::internal(std::string{"socket: "} + std::strerror(errno));
  }
  if (::connect(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return Status::not_found("connect " + path + ": " +
                             std::strerror(errno));
  }
  return fd;
}

}  // namespace roclk::service
