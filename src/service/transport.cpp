#include "roclk/service/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace roclk::service {

namespace {

/// Reads exactly `bytes`; 0 = clean EOF before any byte, -1 = error or
/// mid-buffer EOF, 1 = success.  Interrupted operations are retried —
/// over a real fd that is EINTR, over a FaultyStream an injected storm.
int read_exact(ByteStream& stream, void* buffer, std::size_t bytes) {
  auto* out = static_cast<char*>(buffer);
  std::size_t got = 0;
  while (got < bytes) {
    const IoResult r = stream.read_some(out + got, bytes - got);
    switch (r.kind) {
      case IoResult::Kind::kOk:
        got += r.bytes;
        break;
      case IoResult::Kind::kEof:
        return got == 0 ? 0 : -1;
      case IoResult::Kind::kInterrupted:
        continue;
      case IoResult::Kind::kError:
        return -1;
    }
  }
  return 1;
}

bool write_all(ByteStream& stream, const void* buffer, std::size_t bytes) {
  const auto* in = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < bytes) {
    const IoResult r = stream.write_some(in + sent, bytes - sent);
    switch (r.kind) {
      case IoResult::Kind::kOk:
        sent += r.bytes;
        break;
      case IoResult::Kind::kInterrupted:
        continue;
      case IoResult::Kind::kEof:
      case IoResult::Kind::kError:
        return false;
    }
  }
  return true;
}

}  // namespace

IoResult FdByteStream::read_some(void* buffer, std::size_t bytes) {
  if (fd_ < 0) return IoResult::error();
  const ssize_t n = ::read(fd_, buffer, bytes);
  if (n > 0) return IoResult::ok(static_cast<std::size_t>(n));
  if (n == 0) return IoResult::eof();
  return errno == EINTR ? IoResult::interrupted() : IoResult::error();
}

IoResult FdByteStream::write_some(const void* buffer, std::size_t bytes) {
  if (fd_ < 0) return IoResult::error();
  // MSG_NOSIGNAL: a peer that hung up mid-session must surface as a typed
  // kError the session loop can handle, not a process-killing SIGPIPE.
  // Non-socket fds (the daemon's --stdio pipes) report ENOTSOCK and fall
  // back to write(2).
  ssize_t n = ::send(fd_, buffer, bytes, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) n = ::write(fd_, buffer, bytes);
  if (n >= 0) return IoResult::ok(static_cast<std::size_t>(n));
  return errno == EINTR ? IoResult::interrupted() : IoResult::error();
}

void FdByteStream::close() {
  if (owned_.valid()) {
    owned_.close();  // owning mode: really release the fd
  }
  fd_ = -1;  // borrowing mode: just stop using it
}

FdStream::~FdStream() { close(); }

FdStream::FdStream(FdStream&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)} {}

FdStream& FdStream::operator=(FdStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

int FdStream::release() { return std::exchange(fd_, -1); }

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameReadOutcome read_frame(ByteStream& stream) {
  FrameReadOutcome outcome;
  std::uint64_t header[3];
  const int header_read = read_exact(stream, header, sizeof header);
  if (header_read == 0) {
    outcome.result = ReadFrameResult::kClosed;
    return outcome;
  }
  if (header_read < 0) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = DecodeError::kTruncated;
    return outcome;
  }
  FrameType type{};
  std::uint64_t payload_words = 0;
  if (const DecodeError err = validate_header(header, type, payload_words);
      err != DecodeError::kOk) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = err;
    return outcome;
  }
  std::vector<std::uint64_t> tail(payload_words + 1);
  if (read_exact(stream, tail.data(),
                 tail.size() * sizeof(std::uint64_t)) != 1) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = DecodeError::kTruncated;
    return outcome;
  }
  std::uint64_t checksum = kWireSeed;
  for (const std::uint64_t w : header) checksum = wire_mix(checksum, w);
  for (std::size_t i = 0; i + 1 < tail.size(); ++i) {
    checksum = wire_mix(checksum, tail[i]);
  }
  if (checksum != tail.back()) {
    outcome.result = ReadFrameResult::kMalformed;
    outcome.error = DecodeError::kBadChecksum;
    return outcome;
  }
  outcome.result = ReadFrameResult::kFrame;
  outcome.frame.type = type;
  tail.pop_back();
  outcome.frame.payload = std::move(tail);
  return outcome;
}

FrameReadOutcome read_frame(int fd) {
  FdByteStream stream{fd};
  return read_frame(stream);
}

bool write_frame(ByteStream& stream, const Frame& frame) {
  const std::vector<std::uint64_t> words = encode_frame(frame);
  return write_all(stream, words.data(),
                   words.size() * sizeof(std::uint64_t));
}

bool write_frame(int fd, const Frame& frame) {
  FdByteStream stream{fd};
  return write_frame(stream, frame);
}

bool write_words(ByteStream& stream,
                 const std::vector<std::uint64_t>& words) {
  return write_all(stream, words.data(),
                   words.size() * sizeof(std::uint64_t));
}

bool write_words(int fd, const std::vector<std::uint64_t>& words) {
  FdByteStream stream{fd};
  return write_words(stream, words);
}

Status make_stream_pair(FdStream& a, FdStream& b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::internal(std::string{"socketpair: "} +
                            std::strerror(errno));
  }
  a = FdStream{fds[0]};
  b = FdStream{fds[1]};
  return Status::ok();
}

UnixListener::~UnixListener() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

Status UnixListener::listen(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::invalid_argument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  FdStream fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) {
    return Status::internal(std::string{"socket: "} + std::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return Status::internal("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd.fd(), backlog) != 0) {
    return Status::internal("listen " + path + ": " + std::strerror(errno));
  }
  fd_ = std::move(fd);
  path_ = path;
  return Status::ok();
}

FdStream UnixListener::accept() {
  if (!fd_.valid()) return {};
  const int conn = ::accept(fd_.fd(), nullptr, nullptr);
  return FdStream{conn};
}

void UnixListener::wake() {
  if (fd_.valid()) ::shutdown(fd_.fd(), SHUT_RDWR);
}

Result<FdStream> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::invalid_argument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  FdStream fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) {
    return Status::internal(std::string{"socket: "} + std::strerror(errno));
  }
  if (::connect(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return Status::not_found("connect " + path + ": " +
                             std::strerror(errno));
  }
  return fd;
}

}  // namespace roclk::service
