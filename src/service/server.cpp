#include "roclk/service/server.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <unordered_map>

#include "roclk/service/cache.hpp"
#include "roclk/service/execute.hpp"
#include "roclk/service/journal.hpp"

namespace roclk::service {

namespace {

// Drives request-latency stats and coalescing timeouts on the transport
// boundary only; simulation payloads never read it.
using Clock = std::chrono::steady_clock;  // roclk-lint: allow(wall-clock)

/// One simulation shared by every coalesced asker of the same scenario.
struct InFlight {
  std::mutex mutex;
  std::condition_variable cv;
  bool done{false};
  Response response;
};

}  // namespace

struct SweepService::Impl {
  ServiceConfig config;
  /// One lock guards cache, in-flight table, admission count and stats:
  /// the cache miss -> in-flight lookup sequence and the publish (store +
  /// erase) sequence must each be atomic, or a straggler between them
  /// would re-simulate a scenario that just finished.
  mutable std::mutex mutex;
  ResultCache cache;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> in_flight;
  std::size_t admitted{0};
  bool shutting_down{false};
  ServiceStats stats;
  CacheJournal journal;

  explicit Impl(ServiceConfig cfg)
      : config{cfg}, cache{cfg.cache_capacity} {
    if (config.journal_compact_every == 0) {
      config.journal_compact_every = 4096;
    }
    if (config.journal_path.empty() || config.cache_capacity == 0) return;

    // Warm start: replay every intact record (file order = store order,
    // so LRU recency is reconstructed), then compact so the file starts
    // this run holding exactly the live entries.
    const JournalLoadResult loaded = CacheJournal::load(config.journal_path);
    for (const JournalEntry& entry : loaded.entries) {
      cache.store(entry.hash, entry.response);
    }
    stats.journal_recovered = loaded.records_loaded;
    stats.journal_dropped_words = loaded.dropped_tail_words;

    if (!journal.open_for_append(config.journal_path).is_ok()) {
      ++stats.journal_errors;
      return;
    }
    if (loaded.records_loaded > 0 || loaded.dropped_tail_words > 0) {
      if (compact_locked().is_ok()) {
        ++stats.journal_compactions;
      } else {
        ++stats.journal_errors;
      }
    }
  }

  /// Rewrites the journal to the cache's live entries.  Caller holds
  /// `mutex` (or, in the constructor, is the only thread).
  [[nodiscard]] Status compact_locked() {
    const auto snapshot = cache.snapshot_lru_to_mru();
    std::vector<JournalEntry> entries;
    entries.reserve(snapshot.size());
    for (const auto& [hash, response] : snapshot) {
      entries.push_back(JournalEntry{hash, *response});
    }
    return journal.compact(entries);
  }

  /// Persists one freshly-stored cache entry; compacts when the log has
  /// outgrown its budget.  Caller holds `mutex`.
  void journal_store_locked(std::uint64_t hash, const Response& response) {
    if (!journal.open()) return;
    if (journal.append(hash, response).is_ok()) {
      ++stats.journal_appends;
    } else {
      ++stats.journal_errors;
    }
    if (journal.appended_records() >= config.journal_compact_every) {
      if (compact_locked().is_ok()) {
        ++stats.journal_compactions;
      } else {
        ++stats.journal_errors;
      }
    }
  }
};

SweepService::SweepService(ServiceConfig config)
    : impl_{std::make_unique<Impl>(config)} {}
SweepService::~SweepService() = default;

Response SweepService::handle(const Request& request) {
  Result<Request> normalized = normalize(request);
  if (!normalized.is_ok()) {
    const std::lock_guard lock{impl_->mutex};
    ++impl_->stats.invalid;
    return Response::error(ResponseStatus::kInvalidRequest,
                           normalized.status().message());
  }
  const Request& norm = normalized.value();
  const std::uint64_t hash = content_hash(norm);

  const std::uint32_t deadline_ms = request.deadline_ms != 0
                                        ? request.deadline_ms
                                        : impl_->config.default_deadline_ms;
  const bool has_deadline = deadline_ms != 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds{deadline_ms};

  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    const std::lock_guard lock{impl_->mutex};
    if (impl_->shutting_down) {
      return Response::error(ResponseStatus::kShuttingDown,
                             "service is draining");
    }
    ++impl_->stats.accepted;

    Response cached;
    if (impl_->cache.lookup(hash, cached)) {
      ++impl_->stats.cache_hits;
      ++impl_->stats.completed;
      cached.from_cache = true;
      cached.content_hash = hash;
      return cached;
    }

    if (impl_->admitted >= impl_->config.max_in_flight) {
      ++impl_->stats.shed;
      return Response::error(ResponseStatus::kOverloaded,
                             "admission queue is full");
    }
    if (has_deadline && Clock::now() >= deadline) {
      ++impl_->stats.deadline_exceeded;
      return Response::error(ResponseStatus::kDeadlineExceeded,
                             "deadline elapsed before admission");
    }

    const auto it = impl_->in_flight.find(hash);
    if (it != impl_->in_flight.end()) {
      flight = it->second;
      ++impl_->stats.coalesced;
    } else {
      flight = std::make_shared<InFlight>();
      impl_->in_flight.emplace(hash, flight);
      owner = true;
      ++impl_->stats.simulations;
    }
    ++impl_->admitted;
  }

  if (owner) {
    Response response;
    try {
      if (impl_->config.before_execute) impl_->config.before_execute();
      response = execute(norm, impl_->config.sim_pool);
    } catch (const std::exception& e) {
      // execute() converts simulator exceptions itself; this outer catch
      // keeps anything thrown between admission and publish (hooks
      // included) from stranding coalesced waiters or leaking the
      // admission slot.
      response = Response::error(ResponseStatus::kInternalError, e.what());
    }
    response.content_hash = hash;

    const std::lock_guard lock{impl_->mutex};
    if (response.ok()) {
      impl_->cache.store(hash, response);
      impl_->journal_store_locked(hash, response);
      ++impl_->stats.completed;
    }
    --impl_->admitted;
    impl_->in_flight.erase(hash);
    {
      // Global order is impl_->mutex before flight->mutex everywhere;
      // waiters release flight->mutex before touching impl_->mutex.
      const std::lock_guard flight_lock{flight->mutex};  // roclk-lint: allow(lock-order)
      flight->done = true;
      flight->response = response;
    }
    flight->cv.notify_all();
    return response;
  }

  // Coalesced: wait for the owner, bounded by our own deadline (the
  // owner's simulation keeps running — a late waiter's impatience must
  // not cancel the answer everyone else is waiting for).
  std::unique_lock flight_lock{flight->mutex};
  const auto ready = [&] { return flight->done; };
  bool got_result = true;
  if (has_deadline) {
    got_result = flight->cv.wait_until(flight_lock, deadline, ready);
  } else {
    flight->cv.wait(flight_lock, ready);
  }
  Response response = got_result
                          ? flight->response
                          : Response::error(ResponseStatus::kDeadlineExceeded,
                                            "deadline elapsed while waiting "
                                            "on a coalesced simulation");
  flight_lock.unlock();

  const std::lock_guard lock{impl_->mutex};
  --impl_->admitted;
  if (got_result) {
    response.coalesced = true;
    if (response.ok()) ++impl_->stats.completed;
  } else {
    ++impl_->stats.deadline_exceeded;
  }
  return response;
}

void SweepService::begin_shutdown() {
  const std::lock_guard lock{impl_->mutex};
  impl_->shutting_down = true;
}

bool SweepService::shutting_down() const {
  const std::lock_guard lock{impl_->mutex};
  return impl_->shutting_down;
}

ServiceStats SweepService::stats() const {
  const std::lock_guard lock{impl_->mutex};
  return impl_->stats;
}

const ServiceConfig& SweepService::config() const { return impl_->config; }

}  // namespace roclk::service
