#include "roclk/service/request.hpp"

#include <cmath>
#include <utility>

#include "roclk/analysis/experiments.hpp"

namespace roclk::service {

namespace {

/// Canonical double: -0.0 and +0.0 must hash alike.
double canon(double v) { return v == 0.0 ? 0.0 : v; }

Status check_finite(double v, const char* field) {
  if (!std::isfinite(v)) {
    return Status::invalid_argument(std::string{field} + " must be finite");
  }
  return Status::ok();
}

Status check_positive(double v, const char* field) {
  if (Status s = check_finite(v, field); !s.is_ok()) return s;
  if (v <= 0.0) {
    return Status::invalid_argument(std::string{field} + " must be > 0");
  }
  return Status::ok();
}

Status check_non_negative(double v, const char* field) {
  if (Status s = check_finite(v, field); !s.is_ok()) return s;
  if (v < 0.0) {
    return Status::invalid_argument(std::string{field} + " must be >= 0");
  }
  return Status::ok();
}

/// Service-level sanity bound: keeps cycle-count derivation and stage
/// conversions inside comfortably representable integer ranges.
constexpr double kMaxMagnitude = 1e6;

Status check_bounded(double v, const char* field) {
  if (std::abs(v) > kMaxMagnitude) {
    return Status::invalid_argument(std::string{field} +
                                    " exceeds the service bound of 1e6");
  }
  return Status::ok();
}

/// The te the cycle-count default must cover: for a te sweep the upper
/// bound drives the longest run, and every grid point must share one
/// cycle count (the ensemble path simulates all points in lockstep).
double resolving_te(const Request& request) {
  if (request.kind == QueryKind::kGridSweep &&
      request.grid.axis == GridAxis::kTeOverC) {
    return request.grid.hi;
  }
  const CornerQuery& c = request.kind == QueryKind::kGridSweep
                             ? request.grid.base
                             : request.corner;
  return c.te_over_c;
}

Status normalize_corner(CornerQuery& c, double te_for_cycles) {
  if (c.system > 3) {
    return Status::invalid_argument("unknown system kind");
  }
  if (c.quantization > 2) {
    return Status::invalid_argument("unknown CDN quantization");
  }
  if (Status s = check_positive(c.setpoint_c, "setpoint_c"); !s.is_ok())
    return s;
  if (Status s = check_positive(c.tclk_over_c, "tclk_over_c"); !s.is_ok())
    return s;
  if (Status s = check_non_negative(c.amplitude_frac, "amplitude_frac");
      !s.is_ok())
    return s;
  if (Status s = check_positive(c.te_over_c, "te_over_c"); !s.is_ok())
    return s;
  if (Status s = check_finite(c.mu_over_c, "mu_over_c"); !s.is_ok())
    return s;
  if (Status s =
          check_non_negative(c.free_ro_margin_frac, "free_ro_margin_frac");
      !s.is_ok())
    return s;
  for (const auto& [v, name] :
       {std::pair{c.setpoint_c, "setpoint_c"},
        std::pair{c.tclk_over_c, "tclk_over_c"},
        std::pair{c.amplitude_frac, "amplitude_frac"},
        std::pair{c.te_over_c, "te_over_c"},
        std::pair{c.mu_over_c, "mu_over_c"},
        std::pair{c.free_ro_margin_frac, "free_ro_margin_frac"}}) {
    if (Status s = check_bounded(v, name); !s.is_ok()) return s;
  }
  if (c.cycles > 100000000) {
    return Status::invalid_argument("cycles exceeds the service bound");
  }
  if (c.cycles == 0) {
    c.cycles = analysis::cycles_for(analysis::ExperimentParams{},
                                    te_for_cycles);
  }
  if (c.skip >= c.cycles) {
    return Status::invalid_argument("skip must be < cycles");
  }
  c.setpoint_c = canon(c.setpoint_c);
  c.tclk_over_c = canon(c.tclk_over_c);
  c.amplitude_frac = canon(c.amplitude_frac);
  c.te_over_c = canon(c.te_over_c);
  c.mu_over_c = canon(c.mu_over_c);
  c.free_ro_margin_frac = canon(c.free_ro_margin_frac);
  return Status::ok();
}

Status normalize_grid(GridQuery& g, double te_for_cycles) {
  if (g.axis != GridAxis::kTclkOverC && g.axis != GridAxis::kTeOverC &&
      g.axis != GridAxis::kMuOverC) {
    return Status::invalid_argument("unknown grid axis");
  }
  if (g.scale != GridScale::kLinear && g.scale != GridScale::kLog) {
    return Status::invalid_argument("unknown grid scale");
  }
  if (Status s = check_finite(g.lo, "grid lo"); !s.is_ok()) return s;
  if (Status s = check_finite(g.hi, "grid hi"); !s.is_ok()) return s;
  if (Status s = check_bounded(g.lo, "grid lo"); !s.is_ok()) return s;
  if (Status s = check_bounded(g.hi, "grid hi"); !s.is_ok()) return s;
  if (g.points < 2) {
    return Status::invalid_argument("grid needs at least 2 points");
  }
  if (g.points > 4096) {
    return Status::invalid_argument("grid exceeds 4096 points");
  }
  if (!(g.lo < g.hi)) {
    return Status::invalid_argument("grid lo must be < hi");
  }
  if (g.scale == GridScale::kLog && g.lo <= 0.0) {
    return Status::invalid_argument("log grid needs lo > 0");
  }
  if ((g.axis == GridAxis::kTclkOverC || g.axis == GridAxis::kTeOverC) &&
      g.lo <= 0.0) {
    return Status::invalid_argument("tclk/te axis needs lo > 0");
  }
  g.lo = canon(g.lo);
  g.hi = canon(g.hi);
  return normalize_corner(g.base, te_for_cycles);
}

Status normalize_yield(YieldQuery& y) {
  if (y.chips == 0 || y.chips > 1000000) {
    return Status::invalid_argument("chips must be in [1, 1e6]");
  }
  if (y.paths == 0 || y.paths > 65536) {
    return Status::invalid_argument("paths must be in [1, 65536]");
  }
  if (Status s = check_positive(y.nominal_depth, "nominal_depth");
      !s.is_ok())
    return s;
  if (Status s = check_non_negative(y.d2d_sigma, "d2d_sigma"); !s.is_ok())
    return s;
  if (Status s = check_non_negative(y.wid_sigma, "wid_sigma"); !s.is_ok())
    return s;
  if (Status s = check_non_negative(y.rnd_sigma, "rnd_sigma"); !s.is_ok())
    return s;
  if (Status s = check_positive(y.setpoint_c, "setpoint_c"); !s.is_ok())
    return s;
  if (y.ro_max_length < 1) {
    return Status::invalid_argument("ro_max_length must be >= 1");
  }
  if (Status s = check_finite(y.margin_lo, "margin_lo"); !s.is_ok())
    return s;
  if (Status s = check_finite(y.margin_hi, "margin_hi"); !s.is_ok())
    return s;
  for (const auto& [v, name] :
       {std::pair{y.nominal_depth, "nominal_depth"},
        std::pair{y.setpoint_c, "setpoint_c"},
        std::pair{y.margin_lo, "margin_lo"},
        std::pair{y.margin_hi, "margin_hi"}}) {
    if (Status s = check_bounded(v, name); !s.is_ok()) return s;
  }
  if (y.margin_points == 0 || y.margin_points > 4096) {
    return Status::invalid_argument("margin_points must be in [1, 4096]");
  }
  if (y.margin_points > 1 && !(y.margin_lo < y.margin_hi)) {
    return Status::invalid_argument("margin lo must be < hi");
  }
  y.nominal_depth = canon(y.nominal_depth);
  y.d2d_sigma = canon(y.d2d_sigma);
  y.wid_sigma = canon(y.wid_sigma);
  y.rnd_sigma = canon(y.rnd_sigma);
  y.setpoint_c = canon(y.setpoint_c);
  y.margin_lo = canon(y.margin_lo);
  y.margin_hi = canon(y.margin_hi);
  return Status::ok();
}

void put_corner(const CornerQuery& c, WireWriter& out) {
  out.put(c.system);
  out.put_double(c.setpoint_c);
  out.put_double(c.tclk_over_c);
  out.put_double(c.amplitude_frac);
  out.put_double(c.te_over_c);
  out.put_double(c.mu_over_c);
  out.put(c.cycles);
  out.put(c.skip);
  out.put_double(c.free_ro_margin_frac);
  out.put(c.quantization);
}

CornerQuery take_corner(WireReader& in) {
  CornerQuery c;
  c.system = static_cast<std::uint32_t>(in.take());
  c.setpoint_c = in.take_double();
  c.tclk_over_c = in.take_double();
  c.amplitude_frac = in.take_double();
  c.te_over_c = in.take_double();
  c.mu_over_c = in.take_double();
  c.cycles = in.take();
  c.skip = in.take();
  c.free_ro_margin_frac = in.take_double();
  c.quantization = static_cast<std::uint32_t>(in.take());
  return c;
}

/// Scenario words only — the part the content hash covers.
void put_scenario(const Request& request, WireWriter& out) {
  out.put(static_cast<std::uint64_t>(request.kind));
  switch (request.kind) {
    case QueryKind::kCornerMargin:
      put_corner(request.corner, out);
      break;
    case QueryKind::kGridSweep:
      put_corner(request.grid.base, out);
      out.put(static_cast<std::uint64_t>(request.grid.axis));
      out.put(static_cast<std::uint64_t>(request.grid.scale));
      out.put_double(request.grid.lo);
      out.put_double(request.grid.hi);
      out.put(request.grid.points);
      break;
    case QueryKind::kYieldCurve:
      out.put(request.yield.chips);
      out.put(request.yield.paths);
      out.put_double(request.yield.nominal_depth);
      out.put_double(request.yield.d2d_sigma);
      out.put_double(request.yield.wid_sigma);
      out.put_double(request.yield.rnd_sigma);
      out.put_double(request.yield.setpoint_c);
      out.put(static_cast<std::uint64_t>(request.yield.ro_max_length));
      out.put(request.yield.seed);
      out.put_double(request.yield.margin_lo);
      out.put_double(request.yield.margin_hi);
      out.put(request.yield.margin_points);
      break;
  }
}

}  // namespace

Result<Request> normalize(const Request& request) {
  Request norm = request;
  Status status = Status::ok();
  switch (norm.kind) {
    case QueryKind::kCornerMargin:
      status = normalize_corner(norm.corner, resolving_te(norm));
      norm.grid = GridQuery{};
      norm.yield = YieldQuery{};
      break;
    case QueryKind::kGridSweep:
      status = normalize_grid(norm.grid, resolving_te(norm));
      norm.corner = CornerQuery{};
      norm.yield = YieldQuery{};
      break;
    case QueryKind::kYieldCurve:
      status = normalize_yield(norm.yield);
      norm.corner = CornerQuery{};
      norm.grid = GridQuery{};
      break;
    default:
      status = Status::invalid_argument("unknown query kind");
      break;
  }
  if (!status.is_ok()) return status;
  return norm;
}

std::uint64_t content_hash(const Request& normalized) {
  WireWriter scenario;
  put_scenario(normalized, scenario);
  return scenario.checksum;
}

void encode_request(const Request& request, WireWriter& out) {
  out.put(request.deadline_ms);
  put_scenario(request, out);
}

Result<Request> decode_request(WireReader& in) {
  Request request;
  request.deadline_ms = static_cast<std::uint32_t>(in.take());
  request.kind = static_cast<QueryKind>(in.take());
  switch (request.kind) {
    case QueryKind::kCornerMargin:
      request.corner = take_corner(in);
      break;
    case QueryKind::kGridSweep:
      request.grid.base = take_corner(in);
      request.grid.axis = static_cast<GridAxis>(in.take());
      request.grid.scale = static_cast<GridScale>(in.take());
      request.grid.lo = in.take_double();
      request.grid.hi = in.take_double();
      request.grid.points = in.take();
      break;
    case QueryKind::kYieldCurve:
      request.yield.chips = in.take();
      request.yield.paths = in.take();
      request.yield.nominal_depth = in.take_double();
      request.yield.d2d_sigma = in.take_double();
      request.yield.wid_sigma = in.take_double();
      request.yield.rnd_sigma = in.take_double();
      request.yield.setpoint_c = in.take_double();
      request.yield.ro_max_length = static_cast<std::int64_t>(in.take());
      request.yield.seed = in.take();
      request.yield.margin_lo = in.take_double();
      request.yield.margin_hi = in.take_double();
      request.yield.margin_points = in.take();
      break;
    default:
      return Status::invalid_argument("unknown query kind on wire");
  }
  if (!in.ok()) {
    return Status::invalid_argument("request payload truncated");
  }
  return request;
}

}  // namespace roclk::service
