#include "roclk/cdn/cdn.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace roclk::cdn {

FixedSampleCdn::FixedSampleCdn(std::size_t delay_samples)
    : delay_{delay_samples} {
  reset(0.0);
}

double FixedSampleCdn::push(double generated_period) {
  pipeline_.push_back(generated_period);
  const double delivered = pipeline_.front();
  pipeline_.pop_front();
  return delivered;
}

void FixedSampleCdn::reset(double initial_period) {
  pipeline_.assign(delay_ + 1, initial_period);
  // Keep exactly `delay_` queued entries between push/pop: with delay 0 the
  // pushed value is returned immediately.
  pipeline_.pop_back();
}

QuantizedTimeCdn::QuantizedTimeCdn(double delay_stages, std::size_t history,
                                   DelayQuantization quantization)
    : delay_stages_{delay_stages},
      history_{history},
      quantization_{quantization} {
  ROCLK_REQUIRE(delay_stages >= 0.0, "CDN delay cannot be negative");
  ROCLK_REQUIRE(history >= 2, "history too small");
  ring_.assign(std::bit_ceil(history_), 0.0);
  mask_ = ring_.size() - 1;
  reset(0.0);
}

void QuantizedTimeCdn::reset(double initial_period) {
  std::fill(ring_.begin(), ring_.end(), initial_period);
  next_ = 0;
  count_ = 0;
  last_m_ = 0;
  initial_period_ = initial_period;
}

EdgeDelayCdn::EdgeDelayCdn(double delay_stages)
    : delay_stages_{delay_stages} {
  ROCLK_REQUIRE(delay_stages >= 0.0, "CDN delay cannot be negative");
}

}  // namespace roclk::cdn
