#include "roclk/cdn/cdn.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::cdn {

FixedSampleCdn::FixedSampleCdn(std::size_t delay_samples)
    : delay_{delay_samples} {
  reset(0.0);
}

double FixedSampleCdn::push(double generated_period) {
  ROCLK_DCHECK(std::isfinite(generated_period),
               "generated period must be finite, got " << generated_period);
  pipeline_.push_back(generated_period);
  const double delivered = pipeline_.front();
  pipeline_.pop_front();
  return delivered;
}

void FixedSampleCdn::reset(double initial_period) {
  pipeline_.assign(delay_ + 1, initial_period);
  // Keep exactly `delay_` queued entries between push/pop: with delay 0 the
  // pushed value is returned immediately.
  pipeline_.pop_back();
}

QuantizedTimeCdn::QuantizedTimeCdn(double delay_stages, std::size_t history,
                                   DelayQuantization quantization,
                                   std::size_t ring_depth)
    : delay_stages_{delay_stages},
      history_{history},
      quantization_{quantization} {
  ROCLK_CHECK(delay_stages >= 0.0,
              "CDN delay cannot be negative, got t_clk=" << delay_stages
                                                         << " stages");
  ROCLK_CHECK(history >= 2, "history must be >= 2, got " << history);
  if (ring_depth == 0) ring_depth = std::bit_ceil(history_);
  // Mask indexing in look_back() requires a power-of-two depth that covers
  // the retained history; reject anything else at construction.
  ROCLK_CHECK(is_power_of_two(ring_depth),
              "CDN ring depth must be a power of two, got " << ring_depth);
  ROCLK_CHECK(ring_depth >= history_,
              "CDN ring depth " << ring_depth
                                << " cannot cover history " << history_);
  ring_.assign(ring_depth, 0.0);
  mask_ = ring_.size() - 1;
  reset(0.0);
}

void QuantizedTimeCdn::reset(double initial_period) {
  std::fill(ring_.begin(), ring_.end(), initial_period);
  next_ = 0;
  count_ = 0;
  last_m_ = 0;
  initial_period_ = initial_period;
}

EdgeDelayCdn::EdgeDelayCdn(double delay_stages)
    : delay_stages_{delay_stages} {
  ROCLK_CHECK(delay_stages >= 0.0,
              "CDN delay cannot be negative, got t_clk=" << delay_stages
                                                         << " stages");
}

}  // namespace roclk::cdn
