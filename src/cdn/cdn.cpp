#include "roclk/cdn/cdn.hpp"

#include <algorithm>
#include <cmath>

namespace roclk::cdn {

FixedSampleCdn::FixedSampleCdn(std::size_t delay_samples)
    : delay_{delay_samples} {
  reset(0.0);
}

double FixedSampleCdn::push(double generated_period) {
  pipeline_.push_back(generated_period);
  const double delivered = pipeline_.front();
  pipeline_.pop_front();
  return delivered;
}

void FixedSampleCdn::reset(double initial_period) {
  pipeline_.assign(delay_ + 1, initial_period);
  // Keep exactly `delay_` queued entries between push/pop: with delay 0 the
  // pushed value is returned immediately.
  pipeline_.pop_back();
}

QuantizedTimeCdn::QuantizedTimeCdn(double delay_stages, std::size_t history,
                                   DelayQuantization quantization)
    : delay_stages_{delay_stages},
      history_{history},
      quantization_{quantization} {
  ROCLK_REQUIRE(delay_stages >= 0.0, "CDN delay cannot be negative");
  ROCLK_REQUIRE(history >= 2, "history too small");
  ring_.assign(history_, 0.0);
  reset(0.0);
}

double QuantizedTimeCdn::look_back(std::size_t m) const {
  if (m >= history_) return initial_period_;
  if (m > count_ - 1) {
    // Looking back before the simulation started: the clock ran at the
    // initial period.
    return initial_period_;
  }
  // Most recent entry sits just behind the write cursor.
  const std::size_t newest = (next_ + history_ - 1) % history_;
  const std::size_t idx = (newest + history_ - m) % history_;
  return ring_[idx];
}

double QuantizedTimeCdn::push(double generated_period) {
  ROCLK_REQUIRE(generated_period > 0.0, "period must be positive");
  ring_[next_] = generated_period;
  next_ = (next_ + 1) % history_;
  count_ = std::min(count_ + 1, history_);

  // Real-valued sample delay D[n] = t_clk / T_clk[n], bounded by the
  // history we actually keep.
  const double d = std::min(delay_stages_ / generated_period,
                            static_cast<double>(history_ - 2));
  last_m_ = static_cast<std::size_t>(std::llround(d));

  switch (quantization_) {
    case DelayQuantization::kRound:
      return look_back(static_cast<std::size_t>(std::llround(d)));
    case DelayQuantization::kFloor:
      return look_back(static_cast<std::size_t>(std::floor(d)));
    case DelayQuantization::kLinearInterp: {
      const auto m0 = static_cast<std::size_t>(std::floor(d));
      const double frac = d - std::floor(d);
      const double v0 = look_back(m0);
      if (frac == 0.0) return v0;
      const double v1 = look_back(m0 + 1);
      return v0 * (1.0 - frac) + v1 * frac;
    }
  }
  ROCLK_REQUIRE(false, "unknown quantization mode");
  return generated_period;
}

void QuantizedTimeCdn::reset(double initial_period) {
  std::fill(ring_.begin(), ring_.end(), initial_period);
  next_ = 0;
  count_ = 0;
  last_m_ = 0;
  initial_period_ = initial_period;
}

EdgeDelayCdn::EdgeDelayCdn(double delay_stages)
    : delay_stages_{delay_stages} {
  ROCLK_REQUIRE(delay_stages >= 0.0, "CDN delay cannot be negative");
}

}  // namespace roclk::cdn
